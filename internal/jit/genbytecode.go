package jit

import (
	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
)

// rawSend emits a trampoline call without flushing: generators flush
// before branching, so slow paths see the canonical frame already.
func (c *Cogit) rawSend(selector string, numArgs int) {
	id := c.addSelector(selector, numArgs)
	c.asm.MovI(machine.ClassSelectorReg, id)
	c.asm.Call(machine.SendTrampoline)
}

// genBytecode emits the IR of one byte-code instruction (abstract
// interpretation of the byte-code, §4.1).
func (c *Cogit) genBytecode(m *bytecode.Method, op bytecode.Op, operands []byte) {
	d := bytecode.Describe(op)
	switch d.Family {
	case bytecode.FamPushReceiverVariable:
		r := c.allocReg()
		c.asm.Load(r, machine.ReceiverResultReg, heap.HeaderWords+int64(d.Embedded))
		c.pushReg(r)
	case bytecode.FamPushTemporaryVariable:
		r := c.allocReg()
		c.asm.Load(r, machine.FP, TempOffset(d.Embedded, c.numTemps))
		c.pushReg(r)
	case bytecode.FamStoreReceiverVariable:
		c.genStoreReceiverVariable(d.Embedded, false)
	case bytecode.FamPopIntoReceiverVariable:
		c.genStoreReceiverVariable(d.Embedded, true)
	case bytecode.FamStoreTemporaryVariable:
		c.genStoreTemp(d.Embedded, false)
	case bytecode.FamPopIntoTemporaryVariable:
		c.genStoreTemp(d.Embedded, true)
	case bytecode.FamPushLiteralConstant:
		lit, err := m.LiteralAt(d.Embedded)
		if err != nil {
			c.fail("jit: %v", err)
			return
		}
		v, err := interp.ResolveLiteral(c.OM, lit)
		if err != nil {
			c.fail("jit: %v", err)
			return
		}
		c.pushConst(v.W)
	case bytecode.FamPushReceiver:
		r := c.allocReg()
		c.asm.MovR(r, machine.ReceiverResultReg)
		c.pushReg(r)
	case bytecode.FamPushConstant:
		c.genPushConstant(d.Embedded)
	case bytecode.FamDuplicateTop:
		c.genDup()
	case bytecode.FamPopStackTop:
		c.dropTop()
	case bytecode.FamNop:
		// nothing
	case bytecode.FamPushThisContext:
		c.err = ErrNotCompilable
	case bytecode.FamPrimAdd:
		c.genTaggedArith(machine.OpcAdd, "+")
	case bytecode.FamPrimSubtract:
		c.genTaggedArith(machine.OpcSub, "-")
	case bytecode.FamPrimMultiply:
		c.genMultiply()
	case bytecode.FamPrimDivide:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("/", 1)
			return
		}
		c.genDivide()
	case bytecode.FamPrimDiv:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("//", 1)
			return
		}
		c.genFlooredDivision(true)
	case bytecode.FamPrimMod:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("\\\\", 1)
			return
		}
		c.genFlooredDivision(false)
	case bytecode.FamPrimBitAnd:
		c.genBitwiseBC(machine.OpcAnd, "bitAnd:")
	case bytecode.FamPrimBitOr:
		c.genBitwiseBC(machine.OpcOr, "bitOr:")
	case bytecode.FamPrimBitXor:
		c.genBitwiseBC(machine.OpcXor, "bitXor:")
	case bytecode.FamPrimBitShift:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("bitShift:", 1)
			return
		}
		c.genBitShift()
	case bytecode.FamPrimLessThan:
		c.genComparison(machine.OpcJlt, "<")
	case bytecode.FamPrimGreaterThan:
		c.genComparison(machine.OpcJgt, ">")
	case bytecode.FamPrimLessOrEqual:
		c.genComparison(machine.OpcJle, "<=")
	case bytecode.FamPrimGreaterOrEqual:
		c.genComparison(machine.OpcJge, ">=")
	case bytecode.FamPrimEqual:
		c.genComparison(machine.OpcJeq, "=")
	case bytecode.FamPrimNotEqual:
		c.genComparison(machine.OpcJne, "~=")
	case bytecode.FamPrimIdentical:
		c.genIdentical(false)
	case bytecode.FamPrimNotIdentical:
		c.genIdentical(true)
	case bytecode.FamPrimClass:
		c.genClass()
	case bytecode.FamPrimSize:
		c.genSize()
	case bytecode.FamPrimAt:
		c.genAt()
	case bytecode.FamPrimAtPut:
		c.genAtPut()
	case bytecode.FamShortJump, bytecode.FamLongJumpForward:
		var operand byte
		if len(operands) > 0 {
			operand = operands[0]
		}
		off, _, _, _ := bytecode.JumpOffset(op, operand)
		if off != 0 || c.methodJumpLabel != "" {
			c.flushAll()
			c.asm.Jump(machine.OpcJmp, c.jumpTakenLabel())
		}
	case bytecode.FamShortJumpIfTrue:
		c.genConditionalJump(true)
	case bytecode.FamShortJumpIfFalse:
		c.genConditionalJump(false)
	case bytecode.FamReturnSpecial:
		c.genReturnSpecial(d.Embedded)
	case bytecode.FamReturnTop:
		c.popToReg(machine.ReceiverResultReg)
		c.emitEpilogueReturn()
	case bytecode.FamSend0Args, bytecode.FamSend1Arg, bytecode.FamSend2Args:
		n, _ := bytecode.ArgCountOfSend(op)
		lit, err := m.LiteralAt(d.Embedded)
		if err != nil || lit.Kind != bytecode.LitSelector {
			c.fail("jit: send without selector literal")
			return
		}
		c.emitSend(lit.Str, n)
	default:
		c.err = ErrNotCompilable
	}
}

func (c *Cogit) genPushConstant(embedded int) {
	switch embedded {
	case 0:
		c.pushConst(c.OM.TrueObj)
	case 1:
		c.pushConst(c.OM.FalseObj)
	case 2:
		c.pushConst(c.OM.NilObj)
	case 3:
		c.pushConst(heap.SmallIntFor(0))
	case 4:
		c.pushConst(heap.SmallIntFor(1))
	case 5:
		c.pushConst(heap.SmallIntFor(-1))
	case 6:
		c.pushConst(heap.SmallIntFor(2))
	}
}

func (c *Cogit) genStoreReceiverVariable(i int, pop bool) {
	v := c.allocReg()
	c.popToReg(v)
	c.asm.Store(machine.ReceiverResultReg, heap.HeaderWords+int64(i), v)
	if pop {
		c.freeReg(v)
	} else {
		c.pushReg(v)
	}
}

func (c *Cogit) genStoreTemp(i int, pop bool) {
	v := c.allocReg()
	c.popToReg(v)
	c.asm.Store(machine.FP, TempOffset(i, c.numTemps), v)
	if pop {
		c.freeReg(v)
	} else {
		c.pushReg(v)
	}
}

func (c *Cogit) genDup() {
	if len(c.ss) == 0 {
		c.fail("jit: dup on empty simulation stack")
		return
	}
	top := c.ss[len(c.ss)-1]
	switch top.kind {
	case ssConst:
		c.pushConst(top.w)
	case ssReg:
		r := c.allocReg()
		c.asm.MovR(r, top.reg)
		c.pushReg(r)
	case ssSpill:
		r := c.allocReg()
		c.asm.Load(r, machine.SP, 0)
		c.pushReg(r)
	}
}

// genTaggedArith compiles + and - with the tagged-arithmetic trick of the
// production Cogit: (2a+1)+(2b+1)-1 = 2(a+b)+1, so no untagging is needed
// and the original operands survive for the slow path (Listing 2's shape).
func (c *Cogit) genTaggedArith(op machine.Opc, selector string) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	if op == machine.OpcAdd {
		c.asm.BinI(machine.OpcSubI, res, arg, 1)
		c.asm.Bin(machine.OpcAdd, res, rcvr, res)
	} else {
		c.asm.Bin(machine.OpcSub, res, rcvr, arg)
		c.asm.BinI(machine.OpcAddI, res, res, 1)
	}
	// Overflow check on the tagged result (tagging is monotonic).
	c.cmpImm(res, int64(heap.SmallIntFor(heap.MaxSmallInt)))
	c.asm.Jump(machine.OpcJgt, slow)
	c.cmpImm(res, int64(heap.SmallIntFor(heap.MinSmallInt)))
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend(selector, 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genMultiply() {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	slowRetag := c.newLabel("slowRetag")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.asm.BinI(machine.OpcSarI, res, rcvr, 1)
	c.asm.BinI(machine.OpcSarI, arg, arg, 1) // arg untagged in place
	c.asm.Bin(machine.OpcMul, res, res, arg)
	c.rangeCheckJumpIfOut(res, slowRetag)
	c.tag(res)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slowRetag)
	c.tag(arg) // restore the tagged argument
	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend("*", 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

// genDivide compiles Smalltalk /: exact integer division only.
func (c *Cogit) genDivide() {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	slowRetag := c.newLabel("slowRetag")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.asm.CmpI(arg, int64(heap.SmallIntFor(0)))
	c.asm.Jump(machine.OpcJeq, slow)
	c.asm.BinI(machine.OpcSarI, res, rcvr, 1)
	c.asm.BinI(machine.OpcSarI, arg, arg, 1)
	// Exactness: truncated remainder zero iff floored remainder zero.
	c.asm.Bin(machine.OpcMod, machine.ScratchReg, res, arg)
	c.asm.CmpI(machine.ScratchReg, 0)
	c.asm.Jump(machine.OpcJne, slowRetag)
	c.asm.Bin(machine.OpcDiv, res, res, arg)
	c.rangeCheckJumpIfOut(res, slowRetag) // MinSmallInt / -1 overflows
	c.tag(res)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slowRetag)
	c.tag(arg)
	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend("/", 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

// genFlooredDivision compiles // (isDiv) and \\ with floored semantics on
// top of the machine's truncated division.
func (c *Cogit) genFlooredDivision(isDiv bool) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	slowRetag := c.newLabel("slowRetag")
	fix := c.newLabel("fixup")
	done := c.newLabel("done")
	after := c.newLabel("after")
	selector := "\\\\"
	if isDiv {
		selector = "//"
	}

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.asm.CmpI(arg, int64(heap.SmallIntFor(0)))
	c.asm.Jump(machine.OpcJeq, slow)
	c.asm.BinI(machine.OpcSarI, res, rcvr, 1) // a
	c.asm.BinI(machine.OpcSarI, arg, arg, 1)  // b (untagged in place)

	if isDiv {
		c.asm.Bin(machine.OpcDiv, machine.ScratchReg, res, arg) // q
		c.asm.Bin(machine.OpcMul, machine.ClassSelectorReg, machine.ScratchReg, arg)
		c.asm.Bin(machine.OpcSub, machine.ClassSelectorReg, res, machine.ClassSelectorReg) // rem
		c.asm.CmpI(machine.ClassSelectorReg, 0)
		c.asm.Jump(machine.OpcJeq, done)
		c.asm.Bin(machine.OpcXor, machine.ClassSelectorReg, res, arg)
		c.asm.CmpI(machine.ClassSelectorReg, 0)
		c.asm.Jump(machine.OpcJge, done)
		c.asm.BinI(machine.OpcSubI, machine.ScratchReg, machine.ScratchReg, 1)
		c.asm.Label(done)
		c.asm.MovR(res, machine.ScratchReg)
		c.rangeCheckJumpIfOut(res, slowRetag)
	} else {
		c.asm.Bin(machine.OpcMod, machine.ScratchReg, res, arg) // truncated rem
		c.asm.CmpI(machine.ScratchReg, 0)
		c.asm.Jump(machine.OpcJeq, fix)
		c.asm.Bin(machine.OpcXor, machine.ClassSelectorReg, res, arg)
		c.asm.CmpI(machine.ClassSelectorReg, 0)
		c.asm.Jump(machine.OpcJge, fix)
		c.asm.Bin(machine.OpcAdd, machine.ScratchReg, machine.ScratchReg, arg)
		c.asm.Label(fix)
		c.asm.MovR(res, machine.ScratchReg)
		c.asm.Label(done)
	}
	c.tag(res)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slowRetag)
	c.tag(arg)
	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend(selector, 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

// genBitwiseBC compiles the bitwise byte-codes. Tagged identities keep the
// operands intact: (2a+1)&(2b+1) = 2(a&b)+1, similarly for | ; ^ clears
// the tag, which one ORI restores. Like the interpreter, negative operands
// take the slow send path.
func (c *Cogit) genBitwiseBC(op machine.Opc, selector string) {
	if c.Variant == SimpleStackBasedCogit {
		c.emitSend(selector, 1)
		return
	}
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.asm.CmpI(rcvr, 0)
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.CmpI(arg, 0)
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.Bin(op, res, rcvr, arg)
	if op == machine.OpcXor {
		c.asm.BinI(machine.OpcOrI, res, res, 1)
	}
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend(selector, 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genBitShift() {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	neg := c.newLabel("neg")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.asm.CmpI(rcvr, 0)
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.CmpI(arg, 0)
	c.asm.Jump(machine.OpcJlt, neg)
	// Left shift; amounts beyond 31 always leave the tagged range.
	c.cmpImm(arg, int64(heap.SmallIntFor(31)))
	c.asm.Jump(machine.OpcJgt, slow)
	c.asm.BinI(machine.OpcSarI, machine.ScratchReg, arg, 1)
	c.asm.BinI(machine.OpcSarI, res, rcvr, 1)
	c.asm.Bin(machine.OpcShl, res, res, machine.ScratchReg)
	c.rangeCheckJumpIfOut(res, slow)
	c.tag(res)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(neg)
	c.cmpImm(arg, int64(heap.SmallIntFor(-31)))
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.BinI(machine.OpcSarI, machine.ScratchReg, arg, 1)
	c.asm.MovI(machine.ClassSelectorReg, 0)
	c.asm.Bin(machine.OpcSub, machine.ScratchReg, machine.ClassSelectorReg, machine.ScratchReg)
	c.asm.BinI(machine.OpcSarI, res, rcvr, 1)
	c.asm.Bin(machine.OpcSar, res, res, machine.ScratchReg)
	c.tag(res)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend("bitShift:", 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genComparison(jcc machine.Opc, selector string) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	ctrue := c.newLabel("ctrue")
	cdone := c.newLabel("cdone")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	// Tagging is monotonic, so tagged comparison equals value comparison.
	c.asm.Cmp(rcvr, arg)
	c.asm.Jump(jcc, ctrue)
	c.moviBig(res, int64(c.OM.FalseObj))
	c.asm.Jump(machine.OpcJmp, cdone)
	c.asm.Label(ctrue)
	c.moviBig(res, int64(c.OM.TrueObj))
	c.asm.Label(cdone)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(arg)
	c.rawSend(selector, 1)

	c.asm.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genIdentical(negated bool) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	res := c.allocReg()

	eq := c.newLabel("eq")
	done := c.newLabel("done")

	trueW, falseW := int64(c.OM.TrueObj), int64(c.OM.FalseObj)
	if negated {
		trueW, falseW = falseW, trueW
	}
	c.asm.Cmp(rcvr, arg)
	c.asm.Jump(machine.OpcJeq, eq)
	c.moviBig(res, falseW)
	c.asm.Jump(machine.OpcJmp, done)
	c.asm.Label(eq)
	c.moviBig(res, trueW)
	c.asm.Label(done)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genClass() {
	obj := c.allocReg()
	c.popToReg(obj)
	res := c.allocReg()

	notInt := c.newLabel("notInt")
	done := c.newLabel("done")

	c.asm.BinI(machine.OpcAndI, machine.ScratchReg, obj, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJne, notInt)
	c.moviBig(res, int64(c.OM.ClassAt(heap.ClassIndexSmallInteger).Oop))
	c.asm.Jump(machine.OpcJmp, done)

	c.asm.Label(notInt)
	c.loadHeader(machine.ScratchReg, obj)
	c.asm.BinI(machine.OpcSarI, machine.ScratchReg, machine.ScratchReg, heap.HeaderClassShift)
	c.asm.MovI(machine.ClassSelectorReg, heap.ClassTableBase)
	c.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: res, Rs1: machine.ClassSelectorReg, Rs2: machine.ScratchReg})
	c.asm.Label(done)
	c.freeReg(obj)
	c.pushReg(res)
}

// emitIndexableFormatCheck loads the header into hdrReg and branches to
// slow unless the object's format answers at:/at:put:. The format is left
// in ScratchReg.
func (c *Cogit) emitIndexableFormatCheck(obj, hdrReg machine.Reg, slow, ok string) {
	c.loadHeader(hdrReg, obj)
	c.asm.BinI(machine.OpcSarI, machine.ScratchReg, hdrReg, heap.HeaderSlotBits)
	c.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderFormatMask)
	c.asm.CmpI(machine.ScratchReg, int64(heap.FormatPointers))
	c.asm.Jump(machine.OpcJeq, ok)
	c.asm.CmpI(machine.ScratchReg, int64(heap.FormatWords))
	c.asm.Jump(machine.OpcJeq, ok)
	c.asm.CmpI(machine.ScratchReg, int64(heap.FormatBytes))
	c.asm.Jump(machine.OpcJne, slow)
	c.asm.Label(ok)
}

func (c *Cogit) genSize() {
	obj := c.allocReg()
	c.popToReg(obj)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	ok := c.newLabel("fmtok")
	after := c.newLabel("after")

	c.asm.BinI(machine.OpcAndI, machine.ScratchReg, obj, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJeq, slow)
	c.emitIndexableFormatCheck(obj, res, slow, ok)
	c.asm.BinI(machine.OpcAndI, res, res, heap.HeaderSlotMask)
	c.tag(res)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(obj)
	c.rawSend("size", 0)

	c.asm.Label(after)
	c.freeReg(obj)
	c.pushReg(res)
}

func (c *Cogit) genAt() {
	idx := c.allocReg()
	c.popToReg(idx)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	ok := c.newLabel("fmtok")
	noTag := c.newLabel("noTag")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(idx, slow)
	c.asm.BinI(machine.OpcAndI, machine.ScratchReg, rcvr, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJeq, slow)
	// Header into ClassSelectorReg; format check leaves format in Scratch.
	c.emitIndexableFormatCheck(rcvr, machine.ClassSelectorReg, slow, ok)
	// Bounds: 1 <= i <= slotCount.
	c.asm.BinI(machine.OpcAndI, machine.ClassSelectorReg, machine.ClassSelectorReg, heap.HeaderSlotMask)
	c.asm.BinI(machine.OpcSarI, res, idx, 1) // untagged index
	c.asm.CmpI(res, 1)
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.Cmp(res, machine.ClassSelectorReg)
	c.asm.Jump(machine.OpcJgt, slow)
	// Fetch: rcvr + HeaderWords + (i-1) == rcvr + i for HeaderWords == 1.
	c.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: res, Rs1: rcvr, Rs2: res})
	// Raw formats answer the tagged integer.
	c.asm.CmpI(machine.ScratchReg, int64(heap.FormatPointers))
	c.asm.Jump(machine.OpcJeq, noTag)
	c.tag(res)
	c.asm.Label(noTag)
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(idx)
	c.rawSend("at:", 1)

	c.asm.Label(after)
	c.freeReg(idx)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genAtPut() {
	val := c.allocReg()
	c.popToReg(val)
	idx := c.allocReg()
	c.popToReg(idx)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()

	slow := c.newLabel("slow")
	ok := c.newLabel("fmtok")
	rawBytes := c.newLabel("rawBytes")
	rawWords := c.newLabel("rawWords")
	rawStore := c.newLabel("rawStore")
	ptrStore := c.newLabel("ptrStore")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(idx, slow)
	c.asm.BinI(machine.OpcAndI, machine.ScratchReg, rcvr, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJeq, slow)
	c.emitIndexableFormatCheck(rcvr, machine.ClassSelectorReg, slow, ok)
	c.asm.CmpI(machine.ScratchReg, int64(heap.FormatBytes))
	c.asm.Jump(machine.OpcJeq, rawBytes)
	c.asm.CmpI(machine.ScratchReg, int64(heap.FormatWords))
	c.asm.Jump(machine.OpcJeq, rawWords)
	c.asm.Jump(machine.OpcJmp, ptrStore)

	c.asm.Label(rawBytes)
	c.checkSmallIntJumpIfNot(val, slow)
	c.cmpImm(val, int64(heap.SmallIntFor(0)))
	c.asm.Jump(machine.OpcJlt, slow)
	c.cmpImm(val, int64(heap.SmallIntFor(255)))
	c.asm.Jump(machine.OpcJgt, slow)
	c.asm.Jump(machine.OpcJmp, rawStore)
	c.asm.Label(rawWords)
	c.checkSmallIntJumpIfNot(val, slow)

	c.asm.Label(rawStore)
	c.asm.BinI(machine.OpcAndI, machine.ClassSelectorReg, machine.ClassSelectorReg, heap.HeaderSlotMask)
	c.asm.BinI(machine.OpcSarI, machine.ScratchReg, idx, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.Cmp(machine.ScratchReg, machine.ClassSelectorReg)
	c.asm.Jump(machine.OpcJgt, slow)
	// Store the untagged value.
	c.asm.BinI(machine.OpcSarI, machine.ClassSelectorReg, val, 1)
	c.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ClassSelectorReg, Rs1: rcvr, Rs2: machine.ScratchReg})
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(ptrStore)
	c.asm.BinI(machine.OpcAndI, machine.ClassSelectorReg, machine.ClassSelectorReg, heap.HeaderSlotMask)
	c.asm.BinI(machine.OpcSarI, machine.ScratchReg, idx, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJlt, slow)
	c.asm.Cmp(machine.ScratchReg, machine.ClassSelectorReg)
	c.asm.Jump(machine.OpcJgt, slow)
	c.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: val, Rs1: rcvr, Rs2: machine.ScratchReg})
	c.asm.Jump(machine.OpcJmp, after)

	c.asm.Label(slow)
	c.asm.Push(rcvr)
	c.asm.Push(idx)
	c.asm.Push(val)
	c.rawSend("at:put:", 2)

	c.asm.Label(after)
	c.freeReg(idx)
	c.freeReg(rcvr)
	c.pushReg(val)
}

// jumpTakenLabel answers the label a taken jump lands on: the per-pc
// label in whole-method mode, the jumpTaken breakpoint in the
// single-instruction test schema.
func (c *Cogit) jumpTakenLabel() string {
	if c.methodJumpLabel != "" {
		return c.methodJumpLabel
	}
	c.usesJump = true
	return "jumpTaken"
}

func (c *Cogit) genConditionalJump(onTrue bool) {
	cond := c.allocReg()
	c.popToReg(cond)
	c.flushAll()
	taken := c.jumpTakenLabel()

	localEnd := c.newLabel("condEnd")

	c.cmpImm(cond, int64(c.OM.TrueObj))
	if onTrue {
		c.asm.Jump(machine.OpcJeq, taken)
	} else {
		c.asm.Jump(machine.OpcJeq, localEnd)
	}
	c.cmpImm(cond, int64(c.OM.FalseObj))
	if onTrue {
		c.asm.Jump(machine.OpcJeq, localEnd)
	} else {
		c.asm.Jump(machine.OpcJeq, taken)
	}
	// Neither boolean: #mustBeBoolean (the condition stays consumed).
	c.rawSend("mustBeBoolean", 0)
	c.asm.Label(localEnd)
	c.freeReg(cond)
}

func (c *Cogit) genReturnSpecial(embedded int) {
	switch embedded {
	case 0:
		// returnReceiver: the receiver is already in ReceiverResultReg.
	case 1:
		c.moviBig(machine.ReceiverResultReg, int64(c.OM.TrueObj))
	case 2:
		c.moviBig(machine.ReceiverResultReg, int64(c.OM.FalseObj))
	case 3:
		c.moviBig(machine.ReceiverResultReg, int64(c.OM.NilObj))
	}
	c.emitEpilogueReturn()
}
