package jit

import (
	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/ir"
	"cogdiff/internal/machine"
)

// rawSend emits a trampoline call without flushing: generators flush
// before branching, so slow paths see the canonical frame already.
func (c *Cogit) rawSend(selector string, numArgs int) {
	id := c.addSelector(selector, numArgs)
	c.b.MovI(ir.ClassSelectorReg, id)
	c.b.Call(machine.SendTrampoline)
}

// genBytecode emits the IR of one byte-code instruction (abstract
// interpretation of the byte-code, §4.1).
func (c *Cogit) genBytecode(m *bytecode.Method, op bytecode.Op, operands []byte) {
	d := bytecode.Describe(op)
	switch d.Family {
	case bytecode.FamPushReceiverVariable:
		r := c.allocReg()
		c.b.Load(r, ir.ReceiverResultReg, heap.HeaderWords+int64(d.Embedded))
		c.pushReg(r)
	case bytecode.FamPushTemporaryVariable:
		r := c.allocReg()
		c.b.Load(r, ir.FP, TempOffset(d.Embedded, c.numTemps))
		c.pushReg(r)
	case bytecode.FamStoreReceiverVariable:
		c.genStoreReceiverVariable(d.Embedded, false)
	case bytecode.FamPopIntoReceiverVariable:
		c.genStoreReceiverVariable(d.Embedded, true)
	case bytecode.FamStoreTemporaryVariable:
		c.genStoreTemp(d.Embedded, false)
	case bytecode.FamPopIntoTemporaryVariable:
		c.genStoreTemp(d.Embedded, true)
	case bytecode.FamPushLiteralConstant:
		lit, err := m.LiteralAt(d.Embedded)
		if err != nil {
			c.fail("jit: %v", err)
			return
		}
		v, err := interp.ResolveLiteral(c.OM, lit)
		if err != nil {
			c.fail("jit: %v", err)
			return
		}
		c.pushConst(v.W)
	case bytecode.FamPushReceiver:
		r := c.allocReg()
		c.b.MovR(r, ir.ReceiverResultReg)
		c.pushReg(r)
	case bytecode.FamPushConstant:
		c.genPushConstant(d.Embedded)
	case bytecode.FamDuplicateTop:
		c.genDup()
	case bytecode.FamPopStackTop:
		c.dropTop()
	case bytecode.FamNop:
		// nothing
	case bytecode.FamPushThisContext:
		c.err = ErrNotCompilable
	case bytecode.FamPrimAdd:
		c.genTaggedArith(ir.OpcAdd, "+")
	case bytecode.FamPrimSubtract:
		c.genTaggedArith(ir.OpcSub, "-")
	case bytecode.FamPrimMultiply:
		c.genMultiply()
	case bytecode.FamPrimDivide:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("/", 1)
			return
		}
		c.genDivide()
	case bytecode.FamPrimDiv:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("//", 1)
			return
		}
		c.genFlooredDivision(true)
	case bytecode.FamPrimMod:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("\\\\", 1)
			return
		}
		c.genFlooredDivision(false)
	case bytecode.FamPrimBitAnd:
		c.genBitwiseBC(ir.OpcAnd, "bitAnd:")
	case bytecode.FamPrimBitOr:
		c.genBitwiseBC(ir.OpcOr, "bitOr:")
	case bytecode.FamPrimBitXor:
		c.genBitwiseBC(ir.OpcXor, "bitXor:")
	case bytecode.FamPrimBitShift:
		if c.Variant == SimpleStackBasedCogit {
			c.emitSend("bitShift:", 1)
			return
		}
		c.genBitShift()
	case bytecode.FamPrimLessThan:
		c.genComparison(ir.OpcJlt, "<")
	case bytecode.FamPrimGreaterThan:
		c.genComparison(ir.OpcJgt, ">")
	case bytecode.FamPrimLessOrEqual:
		c.genComparison(ir.OpcJle, "<=")
	case bytecode.FamPrimGreaterOrEqual:
		c.genComparison(ir.OpcJge, ">=")
	case bytecode.FamPrimEqual:
		c.genComparison(ir.OpcJeq, "=")
	case bytecode.FamPrimNotEqual:
		c.genComparison(ir.OpcJne, "~=")
	case bytecode.FamPrimIdentical:
		c.genIdentical(false)
	case bytecode.FamPrimNotIdentical:
		c.genIdentical(true)
	case bytecode.FamPrimClass:
		c.genClass()
	case bytecode.FamPrimSize:
		c.genSize()
	case bytecode.FamPrimAt:
		c.genAt()
	case bytecode.FamPrimAtPut:
		c.genAtPut()
	case bytecode.FamShortJump, bytecode.FamLongJumpForward:
		var operand byte
		if len(operands) > 0 {
			operand = operands[0]
		}
		off, _, _, _ := bytecode.JumpOffset(op, operand)
		if off != 0 || c.methodJumpLabel != "" {
			c.flushAll()
			c.b.Jump(ir.OpcJmp, c.jumpTakenLabel())
		}
	case bytecode.FamShortJumpIfTrue:
		c.genConditionalJump(true)
	case bytecode.FamShortJumpIfFalse:
		c.genConditionalJump(false)
	case bytecode.FamReturnSpecial:
		c.genReturnSpecial(d.Embedded)
	case bytecode.FamReturnTop:
		c.popToReg(ir.ReceiverResultReg)
		c.emitEpilogueReturn()
	case bytecode.FamSend0Args, bytecode.FamSend1Arg, bytecode.FamSend2Args:
		n, _ := bytecode.ArgCountOfSend(op)
		lit, err := m.LiteralAt(d.Embedded)
		if err != nil || lit.Kind != bytecode.LitSelector {
			c.fail("jit: send without selector literal")
			return
		}
		c.emitSend(lit.Str, n)
	default:
		c.err = ErrNotCompilable
	}
}

func (c *Cogit) genPushConstant(embedded int) {
	switch embedded {
	case 0:
		c.pushConst(c.OM.TrueObj)
	case 1:
		c.pushConst(c.OM.FalseObj)
	case 2:
		c.pushConst(c.OM.NilObj)
	case 3:
		c.pushConst(heap.SmallIntFor(0))
	case 4:
		c.pushConst(heap.SmallIntFor(1))
	case 5:
		c.pushConst(heap.SmallIntFor(-1))
	case 6:
		c.pushConst(heap.SmallIntFor(2))
	}
}

func (c *Cogit) genStoreReceiverVariable(i int, pop bool) {
	v := c.allocReg()
	c.popToReg(v)
	c.b.Store(ir.ReceiverResultReg, heap.HeaderWords+int64(i), v)
	if pop {
		c.freeReg(v)
	} else {
		c.pushReg(v)
	}
}

func (c *Cogit) genStoreTemp(i int, pop bool) {
	v := c.allocReg()
	c.popToReg(v)
	c.b.Store(ir.FP, TempOffset(i, c.numTemps), v)
	if pop {
		c.freeReg(v)
	} else {
		c.pushReg(v)
	}
}

func (c *Cogit) genDup() {
	if len(c.ss) == 0 {
		c.fail("jit: dup on empty simulation stack")
		return
	}
	top := c.ss[len(c.ss)-1]
	switch top.kind {
	case ssConst:
		c.pushConst(top.w)
	case ssReg:
		r := c.allocReg()
		c.b.MovR(r, top.reg)
		c.pushReg(r)
	case ssSpill:
		r := c.allocReg()
		c.b.Load(r, ir.SP, 0)
		c.pushReg(r)
	}
}

// genTaggedArith compiles + and - with the tagged-arithmetic trick of the
// production Cogit: (2a+1)+(2b+1)-1 = 2(a+b)+1, so no untagging is needed
// and the original operands survive for the slow path (Listing 2's shape).
func (c *Cogit) genTaggedArith(op ir.Opc, selector string) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	if op == ir.OpcAdd {
		c.b.BinI(ir.OpcSubI, res, arg, 1)
		c.b.Bin(ir.OpcAdd, res, rcvr, res)
	} else {
		c.b.Bin(ir.OpcSub, res, rcvr, arg)
		c.b.BinI(ir.OpcAddI, res, res, 1)
	}
	// Overflow check on the tagged result (tagging is monotonic).
	c.cmpImm(res, int64(heap.SmallIntFor(heap.MaxSmallInt)))
	c.b.Jump(ir.OpcJgt, slow)
	c.cmpImm(res, int64(heap.SmallIntFor(heap.MinSmallInt)))
	c.b.Jump(ir.OpcJlt, slow)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend(selector, 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genMultiply() {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	slowRetag := c.newLabel("slowRetag")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.b.BinI(ir.OpcSarI, res, rcvr, 1)
	c.b.BinI(ir.OpcSarI, arg, arg, 1) // arg untagged in place
	c.b.Bin(ir.OpcMul, res, res, arg)
	c.rangeCheckJumpIfOut(res, slowRetag)
	c.tag(res)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slowRetag)
	c.tag(arg) // restore the tagged argument
	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend("*", 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

// genDivide compiles Smalltalk /: exact integer division only.
func (c *Cogit) genDivide() {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	slowRetag := c.newLabel("slowRetag")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.b.CmpI(arg, int64(heap.SmallIntFor(0)))
	c.b.Jump(ir.OpcJeq, slow)
	c.b.BinI(ir.OpcSarI, res, rcvr, 1)
	c.b.BinI(ir.OpcSarI, arg, arg, 1)
	// Exactness: truncated remainder zero iff floored remainder zero.
	c.b.Bin(ir.OpcMod, ir.ScratchReg, res, arg)
	c.b.CmpI(ir.ScratchReg, 0)
	c.b.Jump(ir.OpcJne, slowRetag)
	c.b.Bin(ir.OpcDiv, res, res, arg)
	c.rangeCheckJumpIfOut(res, slowRetag) // MinSmallInt / -1 overflows
	c.tag(res)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slowRetag)
	c.tag(arg)
	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend("/", 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

// genFlooredDivision compiles // (isDiv) and \\ with floored semantics on
// top of the machine's truncated division.
func (c *Cogit) genFlooredDivision(isDiv bool) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	slowRetag := c.newLabel("slowRetag")
	fix := c.newLabel("fixup")
	done := c.newLabel("done")
	after := c.newLabel("after")
	selector := "\\\\"
	if isDiv {
		selector = "//"
	}

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.b.CmpI(arg, int64(heap.SmallIntFor(0)))
	c.b.Jump(ir.OpcJeq, slow)
	c.b.BinI(ir.OpcSarI, res, rcvr, 1) // a
	c.b.BinI(ir.OpcSarI, arg, arg, 1)  // b (untagged in place)

	if isDiv {
		c.b.Bin(ir.OpcDiv, ir.ScratchReg, res, arg) // q
		c.b.Bin(ir.OpcMul, ir.ClassSelectorReg, ir.ScratchReg, arg)
		c.b.Bin(ir.OpcSub, ir.ClassSelectorReg, res, ir.ClassSelectorReg) // rem
		c.b.CmpI(ir.ClassSelectorReg, 0)
		c.b.Jump(ir.OpcJeq, done)
		c.b.Bin(ir.OpcXor, ir.ClassSelectorReg, res, arg)
		c.b.CmpI(ir.ClassSelectorReg, 0)
		c.b.Jump(ir.OpcJge, done)
		c.b.BinI(ir.OpcSubI, ir.ScratchReg, ir.ScratchReg, 1)
		c.b.Label(done)
		c.b.MovR(res, ir.ScratchReg)
		c.rangeCheckJumpIfOut(res, slowRetag)
	} else {
		c.b.Bin(ir.OpcMod, ir.ScratchReg, res, arg) // truncated rem
		c.b.CmpI(ir.ScratchReg, 0)
		c.b.Jump(ir.OpcJeq, fix)
		c.b.Bin(ir.OpcXor, ir.ClassSelectorReg, res, arg)
		c.b.CmpI(ir.ClassSelectorReg, 0)
		c.b.Jump(ir.OpcJge, fix)
		c.b.Bin(ir.OpcAdd, ir.ScratchReg, ir.ScratchReg, arg)
		c.b.Label(fix)
		c.b.MovR(res, ir.ScratchReg)
		c.b.Label(done)
	}
	c.tag(res)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slowRetag)
	c.tag(arg)
	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend(selector, 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

// genBitwiseBC compiles the bitwise byte-codes. Tagged identities keep the
// operands intact: (2a+1)&(2b+1) = 2(a&b)+1, similarly for | ; ^ clears
// the tag, which one ORI restores. Like the interpreter, negative operands
// take the slow send path.
func (c *Cogit) genBitwiseBC(op ir.Opc, selector string) {
	if c.Variant == SimpleStackBasedCogit {
		c.emitSend(selector, 1)
		return
	}
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.b.CmpI(rcvr, 0)
	c.b.Jump(ir.OpcJlt, slow)
	c.b.CmpI(arg, 0)
	c.b.Jump(ir.OpcJlt, slow)
	c.b.Bin(op, res, rcvr, arg)
	if op == ir.OpcXor {
		c.b.BinI(ir.OpcOrI, res, res, 1)
	}
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend(selector, 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genBitShift() {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	neg := c.newLabel("neg")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	c.b.CmpI(rcvr, 0)
	c.b.Jump(ir.OpcJlt, slow)
	c.b.CmpI(arg, 0)
	c.b.Jump(ir.OpcJlt, neg)
	// Left shift; amounts beyond 31 always leave the tagged range.
	c.cmpImm(arg, int64(heap.SmallIntFor(31)))
	c.b.Jump(ir.OpcJgt, slow)
	c.b.BinI(ir.OpcSarI, ir.ScratchReg, arg, 1)
	c.b.BinI(ir.OpcSarI, res, rcvr, 1)
	c.b.Bin(ir.OpcShl, res, res, ir.ScratchReg)
	c.rangeCheckJumpIfOut(res, slow)
	c.tag(res)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(neg)
	c.cmpImm(arg, int64(heap.SmallIntFor(-31)))
	c.b.Jump(ir.OpcJlt, slow)
	c.b.BinI(ir.OpcSarI, ir.ScratchReg, arg, 1)
	c.b.MovI(ir.ClassSelectorReg, 0)
	c.b.Bin(ir.OpcSub, ir.ScratchReg, ir.ClassSelectorReg, ir.ScratchReg)
	c.b.BinI(ir.OpcSarI, res, rcvr, 1)
	c.b.Bin(ir.OpcSar, res, res, ir.ScratchReg)
	c.tag(res)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend("bitShift:", 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genComparison(jcc ir.Opc, selector string) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	ctrue := c.newLabel("ctrue")
	cdone := c.newLabel("cdone")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(rcvr, slow)
	c.checkSmallIntJumpIfNot(arg, slow)
	// Tagging is monotonic, so tagged comparison equals value comparison.
	c.b.Cmp(rcvr, arg)
	c.b.Jump(jcc, ctrue)
	c.moviBig(res, int64(c.OM.FalseObj))
	c.b.Jump(ir.OpcJmp, cdone)
	c.b.Label(ctrue)
	c.moviBig(res, int64(c.OM.TrueObj))
	c.b.Label(cdone)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(arg)
	c.rawSend(selector, 1)

	c.b.Label(after)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genIdentical(negated bool) {
	arg := c.allocReg()
	c.popToReg(arg)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	res := c.allocReg()

	eq := c.newLabel("eq")
	done := c.newLabel("done")

	trueW, falseW := int64(c.OM.TrueObj), int64(c.OM.FalseObj)
	if negated {
		trueW, falseW = falseW, trueW
	}
	c.b.Cmp(rcvr, arg)
	c.b.Jump(ir.OpcJeq, eq)
	c.moviBig(res, falseW)
	c.b.Jump(ir.OpcJmp, done)
	c.b.Label(eq)
	c.moviBig(res, trueW)
	c.b.Label(done)
	c.freeReg(arg)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genClass() {
	obj := c.allocReg()
	c.popToReg(obj)
	res := c.allocReg()

	notInt := c.newLabel("notInt")
	done := c.newLabel("done")

	c.b.BinI(ir.OpcAndI, ir.ScratchReg, obj, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJne, notInt)
	c.moviBig(res, int64(c.OM.ClassAt(heap.ClassIndexSmallInteger).Oop))
	c.b.Jump(ir.OpcJmp, done)

	c.b.Label(notInt)
	c.loadHeader(ir.ScratchReg, obj)
	c.b.BinI(ir.OpcSarI, ir.ScratchReg, ir.ScratchReg, heap.HeaderClassShift)
	c.b.MovI(ir.ClassSelectorReg, heap.ClassTableBase)
	c.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: res, Rs1: ir.ClassSelectorReg, Rs2: ir.ScratchReg})
	c.b.Label(done)
	c.freeReg(obj)
	c.pushReg(res)
}

// emitIndexableFormatCheck loads the header into hdrReg and branches to
// slow unless the object's format answers at:/at:put:. The format is left
// in ScratchReg.
func (c *Cogit) emitIndexableFormatCheck(obj, hdrReg ir.Reg, slow, ok string) {
	c.loadHeader(hdrReg, obj)
	c.b.BinI(ir.OpcSarI, ir.ScratchReg, hdrReg, heap.HeaderSlotBits)
	c.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderFormatMask)
	c.b.CmpI(ir.ScratchReg, int64(heap.FormatPointers))
	c.b.Jump(ir.OpcJeq, ok)
	c.b.CmpI(ir.ScratchReg, int64(heap.FormatWords))
	c.b.Jump(ir.OpcJeq, ok)
	c.b.CmpI(ir.ScratchReg, int64(heap.FormatBytes))
	c.b.Jump(ir.OpcJne, slow)
	c.b.Label(ok)
}

func (c *Cogit) genSize() {
	obj := c.allocReg()
	c.popToReg(obj)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	ok := c.newLabel("fmtok")
	after := c.newLabel("after")

	c.b.BinI(ir.OpcAndI, ir.ScratchReg, obj, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJeq, slow)
	c.emitIndexableFormatCheck(obj, res, slow, ok)
	c.b.BinI(ir.OpcAndI, res, res, heap.HeaderSlotMask)
	c.tag(res)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(obj)
	c.rawSend("size", 0)

	c.b.Label(after)
	c.freeReg(obj)
	c.pushReg(res)
}

func (c *Cogit) genAt() {
	idx := c.allocReg()
	c.popToReg(idx)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()
	res := c.allocReg()

	slow := c.newLabel("slow")
	ok := c.newLabel("fmtok")
	noTag := c.newLabel("noTag")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(idx, slow)
	c.b.BinI(ir.OpcAndI, ir.ScratchReg, rcvr, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJeq, slow)
	// Header into ClassSelectorReg; format check leaves format in Scratch.
	c.emitIndexableFormatCheck(rcvr, ir.ClassSelectorReg, slow, ok)
	// Bounds: 1 <= i <= slotCount.
	c.b.BinI(ir.OpcAndI, ir.ClassSelectorReg, ir.ClassSelectorReg, heap.HeaderSlotMask)
	c.b.BinI(ir.OpcSarI, res, idx, 1) // untagged index
	c.b.CmpI(res, 1)
	c.b.Jump(ir.OpcJlt, slow)
	c.b.Cmp(res, ir.ClassSelectorReg)
	c.b.Jump(ir.OpcJgt, slow)
	// Fetch: rcvr + HeaderWords + (i-1) == rcvr + i for HeaderWords == 1.
	c.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: res, Rs1: rcvr, Rs2: res})
	// Raw formats answer the tagged integer.
	c.b.CmpI(ir.ScratchReg, int64(heap.FormatPointers))
	c.b.Jump(ir.OpcJeq, noTag)
	c.tag(res)
	c.b.Label(noTag)
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(idx)
	c.rawSend("at:", 1)

	c.b.Label(after)
	c.freeReg(idx)
	c.freeReg(rcvr)
	c.pushReg(res)
}

func (c *Cogit) genAtPut() {
	val := c.allocReg()
	c.popToReg(val)
	idx := c.allocReg()
	c.popToReg(idx)
	rcvr := c.allocReg()
	c.popToReg(rcvr)
	c.flushAll()

	slow := c.newLabel("slow")
	ok := c.newLabel("fmtok")
	rawBytes := c.newLabel("rawBytes")
	rawWords := c.newLabel("rawWords")
	rawStore := c.newLabel("rawStore")
	ptrStore := c.newLabel("ptrStore")
	after := c.newLabel("after")

	c.checkSmallIntJumpIfNot(idx, slow)
	c.b.BinI(ir.OpcAndI, ir.ScratchReg, rcvr, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJeq, slow)
	c.emitIndexableFormatCheck(rcvr, ir.ClassSelectorReg, slow, ok)
	c.b.CmpI(ir.ScratchReg, int64(heap.FormatBytes))
	c.b.Jump(ir.OpcJeq, rawBytes)
	c.b.CmpI(ir.ScratchReg, int64(heap.FormatWords))
	c.b.Jump(ir.OpcJeq, rawWords)
	c.b.Jump(ir.OpcJmp, ptrStore)

	c.b.Label(rawBytes)
	c.checkSmallIntJumpIfNot(val, slow)
	c.cmpImm(val, int64(heap.SmallIntFor(0)))
	c.b.Jump(ir.OpcJlt, slow)
	c.cmpImm(val, int64(heap.SmallIntFor(255)))
	c.b.Jump(ir.OpcJgt, slow)
	c.b.Jump(ir.OpcJmp, rawStore)
	c.b.Label(rawWords)
	c.checkSmallIntJumpIfNot(val, slow)

	c.b.Label(rawStore)
	c.b.BinI(ir.OpcAndI, ir.ClassSelectorReg, ir.ClassSelectorReg, heap.HeaderSlotMask)
	c.b.BinI(ir.OpcSarI, ir.ScratchReg, idx, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJlt, slow)
	c.b.Cmp(ir.ScratchReg, ir.ClassSelectorReg)
	c.b.Jump(ir.OpcJgt, slow)
	// Store the untagged value.
	c.b.BinI(ir.OpcSarI, ir.ClassSelectorReg, val, 1)
	c.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ClassSelectorReg, Rs1: rcvr, Rs2: ir.ScratchReg})
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(ptrStore)
	c.b.BinI(ir.OpcAndI, ir.ClassSelectorReg, ir.ClassSelectorReg, heap.HeaderSlotMask)
	c.b.BinI(ir.OpcSarI, ir.ScratchReg, idx, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJlt, slow)
	c.b.Cmp(ir.ScratchReg, ir.ClassSelectorReg)
	c.b.Jump(ir.OpcJgt, slow)
	c.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: val, Rs1: rcvr, Rs2: ir.ScratchReg})
	c.b.Jump(ir.OpcJmp, after)

	c.b.Label(slow)
	c.b.Push(rcvr)
	c.b.Push(idx)
	c.b.Push(val)
	c.rawSend("at:put:", 2)

	c.b.Label(after)
	c.freeReg(idx)
	c.freeReg(rcvr)
	c.pushReg(val)
}

// jumpTakenLabel answers the label a taken jump lands on: the per-pc
// label in whole-method mode, the jumpTaken breakpoint in the
// single-instruction test schema.
func (c *Cogit) jumpTakenLabel() string {
	if c.methodJumpLabel != "" {
		return c.methodJumpLabel
	}
	c.usesJump = true
	return "jumpTaken"
}

func (c *Cogit) genConditionalJump(onTrue bool) {
	cond := c.allocReg()
	c.popToReg(cond)
	c.flushAll()
	taken := c.jumpTakenLabel()

	localEnd := c.newLabel("condEnd")

	c.cmpImm(cond, int64(c.OM.TrueObj))
	if onTrue {
		c.b.Jump(ir.OpcJeq, taken)
	} else {
		c.b.Jump(ir.OpcJeq, localEnd)
	}
	c.cmpImm(cond, int64(c.OM.FalseObj))
	if onTrue {
		c.b.Jump(ir.OpcJeq, localEnd)
	} else {
		c.b.Jump(ir.OpcJeq, taken)
	}
	// Neither boolean: #mustBeBoolean (the condition stays consumed).
	c.rawSend("mustBeBoolean", 0)
	c.b.Label(localEnd)
	c.freeReg(cond)
}

func (c *Cogit) genReturnSpecial(embedded int) {
	switch embedded {
	case 0:
		// returnReceiver: the receiver is already in ReceiverResultReg.
	case 1:
		c.moviBig(ir.ReceiverResultReg, int64(c.OM.TrueObj))
	case 2:
		c.moviBig(ir.ReceiverResultReg, int64(c.OM.FalseObj))
	case 3:
		c.moviBig(ir.ReceiverResultReg, int64(c.OM.NilObj))
	}
	c.emitEpilogueReturn()
}
