package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// floatPrimsWithMissingReceiverCheck is the seeded defect set (§5.3): all
// float arithmetic and comparisons plus truncated, fractionPart, sqrt,
// exponent and timesTwoPower unbox the receiver without checking it.
var floatPrimsWithMissingReceiverCheck = map[int]bool{
	primitives.PrimIdxFloatAdd:           true,
	primitives.PrimIdxFloatSubtract:      true,
	primitives.PrimIdxFloatMultiply:      true,
	primitives.PrimIdxFloatDivide:        true,
	primitives.PrimIdxFloatLess:          true,
	primitives.PrimIdxFloatGreater:       true,
	primitives.PrimIdxFloatLessEq:        true,
	primitives.PrimIdxFloatGreatEq:       true,
	primitives.PrimIdxFloatEqual:         true,
	primitives.PrimIdxFloatNotEqual:      true,
	primitives.PrimIdxFloatTruncated:     true,
	primitives.PrimIdxFloatFraction:      true,
	primitives.PrimIdxFloatSqrt:          true,
	primitives.PrimIdxFloatExponent:      true,
	primitives.PrimIdxFloatTimesTwoPower: true,
}

// unboxReceiverFloat emits the receiver unboxing. With the seeded defect
// the type check is absent: a tagged-integer receiver dereferences an
// unmapped address (segmentation fault), a wrong heap object yields
// garbage bits — exactly the behaviours of §5.3. The destination register
// choice matters: primitiveFloatTruncated and primitiveFloatFractionPart
// unbox into the registers whose simulated setters are missing, turning
// their faults into simulation errors.
func (n *NativeMethodCompiler) unboxReceiverFloat(p *primitives.Primitive, dst machine.Reg) {
	if !(n.Defects.FloatPrimsSkipReceiverCheck && floatPrimsWithMissingReceiverCheck[p.Index]) {
		n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexFloat)
	}
	n.asm.Load(dst, machine.ReceiverResultReg, heap.HeaderWords)
}

// unboxArgFloatOrFail type-checks and unboxes the first argument.
func (n *NativeMethodCompiler) unboxArgFloatOrFail(dst machine.Reg) {
	n.checkClassIndexOrFail(machine.Arg0Reg, heap.ClassIndexFloat)
	n.asm.Load(dst, machine.Arg0Reg, heap.HeaderWords)
}

// genFloatTemplate compiles the Float native methods.
func (n *NativeMethodCompiler) genFloatTemplate(p *primitives.Primitive) error {
	res := machine.TempReg

	switch p.Index {
	case primitives.PrimIdxAsFloat:
		// The compiled version is correct: it checks what the interpreter
		// only asserted (the missing *interpreter* type check, Listing 5).
		n.checkSmallIntOrFail(machine.ReceiverResultReg)
		n.untag(res, machine.ReceiverResultReg)
		n.asm.Emit(machine.Instr{Op: machine.OpcI2F, Rd: res, Rs1: res})
		n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
		n.asm.Ret()

	case primitives.PrimIdxFloatAdd, primitives.PrimIdxFloatSubtract,
		primitives.PrimIdxFloatMultiply, primitives.PrimIdxFloatDivide:
		op := map[int]machine.Opc{
			primitives.PrimIdxFloatAdd:      machine.OpcFAdd,
			primitives.PrimIdxFloatSubtract: machine.OpcFSub,
			primitives.PrimIdxFloatMultiply: machine.OpcFMul,
			primitives.PrimIdxFloatDivide:   machine.OpcFDiv,
		}[p.Index]
		n.unboxReceiverFloat(p, res)
		n.unboxArgFloatOrFail(machine.ExtraReg)
		n.asm.Bin(op, res, res, machine.ExtraReg)
		n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
		n.asm.Ret()

	case primitives.PrimIdxFloatLess, primitives.PrimIdxFloatGreater,
		primitives.PrimIdxFloatLessEq, primitives.PrimIdxFloatGreatEq,
		primitives.PrimIdxFloatEqual, primitives.PrimIdxFloatNotEqual:
		jcc := map[int]machine.Opc{
			primitives.PrimIdxFloatLess:     machine.OpcJlt,
			primitives.PrimIdxFloatGreater:  machine.OpcJgt,
			primitives.PrimIdxFloatLessEq:   machine.OpcJle,
			primitives.PrimIdxFloatGreatEq:  machine.OpcJge,
			primitives.PrimIdxFloatEqual:    machine.OpcJeq,
			primitives.PrimIdxFloatNotEqual: machine.OpcJne,
		}[p.Index]
		n.unboxReceiverFloat(p, res)
		n.unboxArgFloatOrFail(machine.ExtraReg)
		n.asm.FCmp(res, machine.ExtraReg)
		n.retBool(jcc)

	case primitives.PrimIdxFloatTruncated:
		// Unboxes into ExtraReg (r5): one of the two simulated registers
		// whose fault-recovery setter is missing.
		n.unboxReceiverFloat(p, machine.ExtraReg)
		n.asm.Emit(machine.Instr{Op: machine.OpcF2I, Rd: res, Rs1: machine.ExtraReg})
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxFloatFraction:
		// Unboxes into Arg2Reg (r3): the second missing accessor.
		n.unboxReceiverFloat(p, machine.Arg2Reg)
		n.asm.Emit(machine.Instr{Op: machine.OpcF2I, Rd: res, Rs1: machine.Arg2Reg})
		n.asm.Emit(machine.Instr{Op: machine.OpcI2F, Rd: res, Rs1: res})
		n.asm.Bin(machine.OpcFSub, res, machine.Arg2Reg, res)
		n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
		n.asm.Ret()

	case primitives.PrimIdxFloatExponent:
		n.unboxReceiverFloat(p, res)
		// Zero, NaN and infinity fail like the interpreter.
		n.asm.BinI(machine.OpcShlI, machine.ScratchReg, res, 1)
		n.asm.CmpI(machine.ScratchReg, 0)
		n.asm.Jump(machine.OpcJeq, fallthroughLabel)
		n.asm.BinI(machine.OpcSarI, machine.ScratchReg, res, 52)
		n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, 0x7FF)
		n.asm.CmpI(machine.ScratchReg, 0x7FF)
		n.asm.Jump(machine.OpcJeq, fallthroughLabel)
		n.asm.BinI(machine.OpcSubI, res, machine.ScratchReg, 1023)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxFloatTimesTwoPower:
		n.unboxReceiverFloat(p, res)
		n.checkSmallIntOrFail(machine.Arg0Reg)
		n.untag(machine.ExtraReg, machine.Arg0Reg)
		n.cmpImm(machine.ExtraReg, -1074)
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.cmpImm(machine.ExtraReg, 1023)
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
		// x * 2^k in two steps so denormal scales stay exact:
		// first clamp the step into the normal exponent range.
		small := n.label("small")
		done := n.label("done")
		n.cmpImm(machine.ExtraReg, -1022)
		n.asm.Jump(machine.OpcJlt, small)
		n.asm.BinI(machine.OpcAddI, machine.ScratchReg, machine.ExtraReg, 1023)
		n.asm.BinI(machine.OpcShlI, machine.ScratchReg, machine.ScratchReg, 52)
		n.asm.Bin(machine.OpcFMul, res, res, machine.ScratchReg)
		n.asm.Jump(machine.OpcJmp, done)
		n.asm.Label(small)
		// multiply by 2^-1022 (bit pattern 1<<52, built with a shift so
		// the fixed-width ISA can encode it), then by 2^(k+1022)
		n.asm.MovI(machine.ScratchReg, 1)
		n.asm.BinI(machine.OpcShlI, machine.ScratchReg, machine.ScratchReg, 52)
		n.asm.Bin(machine.OpcFMul, res, res, machine.ScratchReg)
		n.asm.BinI(machine.OpcAddI, machine.ScratchReg, machine.ExtraReg, 1022+1023)
		n.asm.BinI(machine.OpcShlI, machine.ScratchReg, machine.ScratchReg, 52)
		n.asm.Bin(machine.OpcFMul, res, res, machine.ScratchReg)
		n.asm.Label(done)
		n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
		n.asm.Ret()

	case primitives.PrimIdxFloatSqrt:
		n.unboxReceiverFloat(p, res)
		// Negative receivers fail like the interpreter's guard.
		n.asm.MovI(machine.ScratchReg, 0)
		n.asm.FCmp(res, machine.ScratchReg)
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.asm.Emit(machine.Instr{Op: machine.OpcFSqrt, Rd: res, Rs1: res})
		n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
		n.asm.Ret()

	case primitives.PrimIdxFloatSin, primitives.PrimIdxFloatArctan,
		primitives.PrimIdxFloatLogN, primitives.PrimIdxFloatExp:
		// Only compiled when not marked missing (pristine configuration).
		op := map[int]machine.Opc{
			primitives.PrimIdxFloatSin:    machine.OpcFSin,
			primitives.PrimIdxFloatArctan: machine.OpcFAtan,
			primitives.PrimIdxFloatLogN:   machine.OpcFLog,
			primitives.PrimIdxFloatExp:    machine.OpcFExp,
		}[p.Index]
		n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexFloat)
		n.asm.Load(res, machine.ReceiverResultReg, heap.HeaderWords)
		if p.Index == primitives.PrimIdxFloatLogN {
			n.asm.MovI(machine.ScratchReg, 0)
			n.asm.FCmp(res, machine.ScratchReg)
			n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		}
		n.asm.Emit(machine.Instr{Op: op, Rd: res, Rs1: res})
		n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
		n.asm.Ret()

	default:
		return fmt.Errorf("%w: no float template for %s", ErrNotCompilable, p.Name)
	}
	return nil
}
