package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/primitives"
)

// floatPrimsWithMissingReceiverCheck is the seeded defect set (§5.3): all
// float arithmetic and comparisons plus truncated, fractionPart, sqrt,
// exponent and timesTwoPower unbox the receiver without checking it.
var floatPrimsWithMissingReceiverCheck = map[int]bool{
	primitives.PrimIdxFloatAdd:           true,
	primitives.PrimIdxFloatSubtract:      true,
	primitives.PrimIdxFloatMultiply:      true,
	primitives.PrimIdxFloatDivide:        true,
	primitives.PrimIdxFloatLess:          true,
	primitives.PrimIdxFloatGreater:       true,
	primitives.PrimIdxFloatLessEq:        true,
	primitives.PrimIdxFloatGreatEq:       true,
	primitives.PrimIdxFloatEqual:         true,
	primitives.PrimIdxFloatNotEqual:      true,
	primitives.PrimIdxFloatTruncated:     true,
	primitives.PrimIdxFloatFraction:      true,
	primitives.PrimIdxFloatSqrt:          true,
	primitives.PrimIdxFloatExponent:      true,
	primitives.PrimIdxFloatTimesTwoPower: true,
}

// unboxReceiverFloat emits the receiver unboxing. With the seeded defect
// the type check is absent: a tagged-integer receiver dereferences an
// unmapped address (segmentation fault), a wrong heap object yields
// garbage bits — exactly the behaviours of §5.3. The destination register
// choice matters: primitiveFloatTruncated and primitiveFloatFractionPart
// unbox into the registers whose simulated setters are missing, turning
// their faults into simulation errors.
func (n *NativeMethodCompiler) unboxReceiverFloat(p *primitives.Primitive, dst ir.Reg) {
	if !(n.Defects.FloatPrimsSkipReceiverCheck && floatPrimsWithMissingReceiverCheck[p.Index]) {
		n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexFloat)
	}
	n.b.Load(dst, ir.ReceiverResultReg, heap.HeaderWords)
}

// unboxArgFloatOrFail type-checks and unboxes the first argument.
func (n *NativeMethodCompiler) unboxArgFloatOrFail(dst ir.Reg) {
	n.checkClassIndexOrFail(ir.Arg0Reg, heap.ClassIndexFloat)
	n.b.Load(dst, ir.Arg0Reg, heap.HeaderWords)
}

// genFloatTemplate compiles the Float native methods.
func (n *NativeMethodCompiler) genFloatTemplate(p *primitives.Primitive) error {
	res := ir.TempReg

	switch p.Index {
	case primitives.PrimIdxAsFloat:
		// The compiled version is correct: it checks what the interpreter
		// only asserted (the missing *interpreter* type check, Listing 5).
		n.checkSmallIntOrFail(ir.ReceiverResultReg)
		n.untag(res, ir.ReceiverResultReg)
		n.b.Emit(ir.Instr{Op: ir.OpcI2F, Rd: res, Rs1: res})
		n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
		n.b.Ret()

	case primitives.PrimIdxFloatAdd, primitives.PrimIdxFloatSubtract,
		primitives.PrimIdxFloatMultiply, primitives.PrimIdxFloatDivide:
		op := map[int]ir.Opc{
			primitives.PrimIdxFloatAdd:      ir.OpcFAdd,
			primitives.PrimIdxFloatSubtract: ir.OpcFSub,
			primitives.PrimIdxFloatMultiply: ir.OpcFMul,
			primitives.PrimIdxFloatDivide:   ir.OpcFDiv,
		}[p.Index]
		n.unboxReceiverFloat(p, res)
		n.unboxArgFloatOrFail(ir.ExtraReg)
		n.b.Bin(op, res, res, ir.ExtraReg)
		n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
		n.b.Ret()

	case primitives.PrimIdxFloatLess, primitives.PrimIdxFloatGreater,
		primitives.PrimIdxFloatLessEq, primitives.PrimIdxFloatGreatEq,
		primitives.PrimIdxFloatEqual, primitives.PrimIdxFloatNotEqual:
		jcc := map[int]ir.Opc{
			primitives.PrimIdxFloatLess:     ir.OpcJlt,
			primitives.PrimIdxFloatGreater:  ir.OpcJgt,
			primitives.PrimIdxFloatLessEq:   ir.OpcJle,
			primitives.PrimIdxFloatGreatEq:  ir.OpcJge,
			primitives.PrimIdxFloatEqual:    ir.OpcJeq,
			primitives.PrimIdxFloatNotEqual: ir.OpcJne,
		}[p.Index]
		n.unboxReceiverFloat(p, res)
		n.unboxArgFloatOrFail(ir.ExtraReg)
		n.b.FCmp(res, ir.ExtraReg)
		n.retBool(jcc)

	case primitives.PrimIdxFloatTruncated:
		// Unboxes into ExtraReg (r5): one of the two simulated registers
		// whose fault-recovery setter is missing.
		n.unboxReceiverFloat(p, ir.ExtraReg)
		n.b.Emit(ir.Instr{Op: ir.OpcF2I, Rd: res, Rs1: ir.ExtraReg})
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxFloatFraction:
		// Unboxes into Arg2Reg (r3): the second missing accessor.
		n.unboxReceiverFloat(p, ir.Arg2Reg)
		n.b.Emit(ir.Instr{Op: ir.OpcF2I, Rd: res, Rs1: ir.Arg2Reg})
		n.b.Emit(ir.Instr{Op: ir.OpcI2F, Rd: res, Rs1: res})
		n.b.Bin(ir.OpcFSub, res, ir.Arg2Reg, res)
		n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
		n.b.Ret()

	case primitives.PrimIdxFloatExponent:
		n.unboxReceiverFloat(p, res)
		// Zero, NaN and infinity fail like the interpreter.
		n.b.BinI(ir.OpcShlI, ir.ScratchReg, res, 1)
		n.b.CmpI(ir.ScratchReg, 0)
		n.b.Jump(ir.OpcJeq, fallthroughLabel)
		n.b.BinI(ir.OpcSarI, ir.ScratchReg, res, 52)
		n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, 0x7FF)
		n.b.CmpI(ir.ScratchReg, 0x7FF)
		n.b.Jump(ir.OpcJeq, fallthroughLabel)
		n.b.BinI(ir.OpcSubI, res, ir.ScratchReg, 1023)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxFloatTimesTwoPower:
		n.unboxReceiverFloat(p, res)
		n.checkSmallIntOrFail(ir.Arg0Reg)
		n.untag(ir.ExtraReg, ir.Arg0Reg)
		n.cmpImm(ir.ExtraReg, -1074)
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.cmpImm(ir.ExtraReg, 1023)
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
		// x * 2^k in two steps so denormal scales stay exact:
		// first clamp the step into the normal exponent range.
		small := n.label("small")
		done := n.label("done")
		n.cmpImm(ir.ExtraReg, -1022)
		n.b.Jump(ir.OpcJlt, small)
		n.b.BinI(ir.OpcAddI, ir.ScratchReg, ir.ExtraReg, 1023)
		n.b.BinI(ir.OpcShlI, ir.ScratchReg, ir.ScratchReg, 52)
		n.b.Bin(ir.OpcFMul, res, res, ir.ScratchReg)
		n.b.Jump(ir.OpcJmp, done)
		n.b.Label(small)
		// multiply by 2^-1022 (bit pattern 1<<52, built with a shift so
		// the fixed-width ISA can encode it), then by 2^(k+1022)
		n.b.MovI(ir.ScratchReg, 1)
		n.b.BinI(ir.OpcShlI, ir.ScratchReg, ir.ScratchReg, 52)
		n.b.Bin(ir.OpcFMul, res, res, ir.ScratchReg)
		n.b.BinI(ir.OpcAddI, ir.ScratchReg, ir.ExtraReg, 1022+1023)
		n.b.BinI(ir.OpcShlI, ir.ScratchReg, ir.ScratchReg, 52)
		n.b.Bin(ir.OpcFMul, res, res, ir.ScratchReg)
		n.b.Label(done)
		n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
		n.b.Ret()

	case primitives.PrimIdxFloatSqrt:
		n.unboxReceiverFloat(p, res)
		// Negative receivers fail like the interpreter's guard.
		n.b.MovI(ir.ScratchReg, 0)
		n.b.FCmp(res, ir.ScratchReg)
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.b.Emit(ir.Instr{Op: ir.OpcFSqrt, Rd: res, Rs1: res})
		n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
		n.b.Ret()

	case primitives.PrimIdxFloatSin, primitives.PrimIdxFloatArctan,
		primitives.PrimIdxFloatLogN, primitives.PrimIdxFloatExp:
		// Only compiled when not marked missing (pristine configuration).
		op := map[int]ir.Opc{
			primitives.PrimIdxFloatSin:    ir.OpcFSin,
			primitives.PrimIdxFloatArctan: ir.OpcFAtan,
			primitives.PrimIdxFloatLogN:   ir.OpcFLog,
			primitives.PrimIdxFloatExp:    ir.OpcFExp,
		}[p.Index]
		n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexFloat)
		n.b.Load(res, ir.ReceiverResultReg, heap.HeaderWords)
		if p.Index == primitives.PrimIdxFloatLogN {
			n.b.MovI(ir.ScratchReg, 0)
			n.b.FCmp(res, ir.ScratchReg)
			n.b.Jump(ir.OpcJlt, fallthroughLabel)
		}
		n.b.Emit(ir.Instr{Op: op, Rd: res, Rs1: res})
		n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
		n.b.Ret()

	default:
		return fmt.Errorf("%w: no float template for %s", ErrNotCompilable, p.Name)
	}
	return nil
}
