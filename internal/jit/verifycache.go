package jit

import (
	"sync"

	"cogdiff/internal/ir"
)

// The verified-clean cache. A campaign compiles the same byte-code
// method once per (path, ISA, variant) unit, and the IR entering each
// verification stage is a pure function of (method, variant, defects) —
// so across a run the verifier sees a handful of distinct functions
// thousands of times. Caching the verdict "this (input, output) stage
// pair verified clean" by content hash turns all but the first sighting
// into a lookup.
//
// Only clean verdicts are cached: any miss — including every defective
// unit — re-runs the full verifier, so violations, their ordering and
// their blame strings are byte-for-byte what an uncached run produces.
// The cache changes how often the verifier computes, never what it
// concludes.

// verifyKey identifies one verification stage by the 128-bit content
// hash of the stage's input function (zero for the front-end stage),
// the hash of its output, and the deopt-requirement bit.
type verifyKey struct {
	prevLo, prevHi uint64
	fnLo, fnHi     uint64
	requireDeopt   bool
}

// verifyCacheLimit bounds the clean-verdict set; at ~80 bytes per entry
// the full cache stays under a few megabytes. The bound comfortably
// holds every stage pair of a whole-catalog campaign (tens of
// thousands), because a reset mid-campaign would put cold-miss analyze
// cost back on the steady-state path. Reaching the limit resets the
// cache (correctness is unaffected — entries only save work).
const verifyCacheLimit = 1 << 16

var verifyCache = struct {
	sync.RWMutex
	m map[verifyKey]struct{}
}{m: make(map[verifyKey]struct{})}

func verifiedClean(k verifyKey) bool {
	verifyCache.RLock()
	_, ok := verifyCache.m[k]
	verifyCache.RUnlock()
	return ok
}

func recordVerifiedClean(k verifyKey) {
	verifyCache.Lock()
	if len(verifyCache.m) >= verifyCacheLimit {
		verifyCache.m = make(map[verifyKey]struct{})
	}
	verifyCache.m[k] = struct{}{}
	verifyCache.Unlock()
}

// hashFn computes a 128-bit FNV-1a content hash over every field of
// every instruction. Two functions with equal hashes are, for the
// cache's purposes, the same function; 128 bits keeps the collision
// probability negligible against the verifier's soundness claim.
func hashFn(fn *ir.Fn) (lo, hi uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	lo, hi = offset64, offset64^0x9e3779b97f4a7c15
	mix := func(v uint64) {
		lo = (lo ^ v) * prime64
		hi = (hi ^ (v + 0x9e3779b97f4a7c15)) * prime64
	}
	mix(uint64(len(fn.Instrs)))
	for i := range fn.Instrs {
		ins := &fn.Instrs[i]
		mix(uint64(ins.Op))
		mix(uint64(ins.Rd) | uint64(ins.Rs1)<<16 | uint64(ins.Rs2)<<32)
		mix(uint64(ins.Imm))
		mix(uint64(len(ins.Sym)))
		for j := 0; j < len(ins.Sym); j++ {
			mix(uint64(ins.Sym[j]))
		}
	}
	return lo, hi
}
