// Package jit implements the Cogit-style JIT compilers of the VM: three
// byte-code front-ends (SimpleStackBasedCogit, StackToRegisterCogit,
// RegisterAllocatingCogit) and the template-based native-method compiler
// (§4.1). Front-ends parse byte-code through abstract interpretation using
// a parse-time simulation stack, lower it to machine code through one of
// two ISA back-end styles, and follow the compilation schemas of §4.2:
// byte-code tests prepend literal pushes materializing the input operand
// stack (Listing 3); native-method tests compile only the native behavior
// and plant a breakpoint to detect fall-through (Listing 4).
package jit

import (
	"errors"
	"fmt"

	"cogdiff/internal/machine"
)

// Variant selects a byte-code compiler front-end.
type Variant int

const (
	// SimpleStackBasedCogit maps pushes and pops one-to-one onto machine
	// stack operations and compiles fewer inlined fast paths.
	SimpleStackBasedCogit Variant = iota
	// StackToRegisterCogit simulates pushes on a parse-time stack and
	// emits stack traffic only when values are actually consumed.
	StackToRegisterCogit
	// RegisterAllocatingCogit extends StackToRegisterCogit with a linear
	// register allocator over a wider register pool.
	RegisterAllocatingCogit
	// MetaJITCogit is the machine-derived front-end: its guard chains and
	// straight-line effects are generated from the interpreter's concolic
	// path trees by internal/metacompile rather than hand-written.
	MetaJITCogit
)

func (v Variant) String() string {
	switch v {
	case SimpleStackBasedCogit:
		return "SimpleStackBasedCogit"
	case StackToRegisterCogit:
		return "StackToRegisterCogit"
	case RegisterAllocatingCogit:
		return "RegisterAllocatingCogit"
	case MetaJITCogit:
		return "MetaJITCogit"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Breakpoint identifiers planted by the compilation schemas.
const (
	// BrkEndFall marks the end of a compiled byte-code instruction: the
	// instruction executed to completion without branching.
	BrkEndFall = 1
	// BrkJumpTaken marks the landing site of a taken compiled jump.
	BrkJumpTaken = 2
	// BrkNativeFallthrough detects a native method falling through to its
	// byte-code body: the primitive failed its checks (Listing 4).
	BrkNativeFallthrough = 3
	// BrkNotImplemented marks native methods without a compiler template
	// (§5.3 missing functionality).
	BrkNotImplemented = 4
	// BrkMetaDeopt is the meta-compiled front-end's deoptimization stub:
	// execution reached the end of a guard chain without any recorded path
	// matching the runtime input.
	BrkMetaDeopt = 5
)

// Selector describes one send site of a compiled method; its slice index
// is the identifier the code moves into ClassSelectorReg before calling
// the send trampoline.
type Selector struct {
	Name    string
	NumArgs int
}

// CompiledMethod is the output of a compilation: the program, its encoded
// machine code, and the send-site table.
type CompiledMethod struct {
	Prog      *machine.Program
	Code      []byte
	ISA       machine.ISA
	Selectors []Selector
	NumTemps  int
}

// SelectorAt resolves a selector identifier from ClassSelectorReg.
func (cm *CompiledMethod) SelectorAt(id int64) (Selector, bool) {
	if id < 0 || id >= int64(len(cm.Selectors)) {
		return Selector{}, false
	}
	return cm.Selectors[id], true
}

// ErrNotCompilable marks instructions a front-end cannot compile (e.g.
// pushThisContext); the tester curates such cases out.
var ErrNotCompilable = errors.New("jit: instruction not compilable")

// TempOffset returns the FP-relative offset of temporary i under the
// compiled frame layout: [FP]=saved FP, [FP+1]=return address, temporaries
// above (temp 0 pushed first, so deepest).
func TempOffset(i, numTemps int) int64 {
	return int64(2 + numTemps - 1 - i)
}
