package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// genIntegerTemplate compiles the SmallInteger native methods.
func (n *NativeMethodCompiler) genIntegerTemplate(p *primitives.Primitive) error {
	rcvr, arg := machine.ReceiverResultReg, machine.Arg0Reg
	res := machine.TempReg

	switch p.Index {
	case primitives.PrimIdxAdd, primitives.PrimIdxSubtract:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		if p.Index == primitives.PrimIdxAdd {
			n.asm.BinI(machine.OpcSubI, res, arg, 1)
			n.asm.Bin(machine.OpcAdd, res, rcvr, res)
		} else {
			n.asm.Bin(machine.OpcSub, res, rcvr, arg)
			n.asm.BinI(machine.OpcAddI, res, res, 1)
		}
		n.cmpImm(res, int64(heap.SmallIntFor(heap.MaxSmallInt)))
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
		n.cmpImm(res, int64(heap.SmallIntFor(heap.MinSmallInt)))
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxMultiply:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.untag(res, rcvr)
		n.untag(machine.ExtraReg, arg)
		n.asm.Bin(machine.OpcMul, res, res, machine.ExtraReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxLess, primitives.PrimIdxGreater, primitives.PrimIdxLessEq,
		primitives.PrimIdxGreatEq, primitives.PrimIdxEqual, primitives.PrimIdxNotEqual:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.asm.Cmp(rcvr, arg) // tagged comparison preserves order
		jcc := map[int]machine.Opc{
			primitives.PrimIdxLess:     machine.OpcJlt,
			primitives.PrimIdxGreater:  machine.OpcJgt,
			primitives.PrimIdxLessEq:   machine.OpcJle,
			primitives.PrimIdxGreatEq:  machine.OpcJge,
			primitives.PrimIdxEqual:    machine.OpcJeq,
			primitives.PrimIdxNotEqual: machine.OpcJne,
		}[p.Index]
		n.retBool(jcc)

	case primitives.PrimIdxDivide:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.asm.CmpI(arg, int64(heap.SmallIntFor(0)))
		n.asm.Jump(machine.OpcJeq, fallthroughLabel)
		n.untag(res, rcvr)
		n.untag(machine.ExtraReg, arg)
		n.asm.Bin(machine.OpcMod, machine.ScratchReg, res, machine.ExtraReg)
		n.asm.CmpI(machine.ScratchReg, 0)
		n.asm.Jump(machine.OpcJne, fallthroughLabel)
		n.asm.Bin(machine.OpcDiv, res, res, machine.ExtraReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxDiv, primitives.PrimIdxMod:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.asm.CmpI(arg, int64(heap.SmallIntFor(0)))
		n.asm.Jump(machine.OpcJeq, fallthroughLabel)
		n.untag(res, rcvr)             // a
		n.untag(machine.ExtraReg, arg) // b
		done := n.label("done")
		if p.Index == primitives.PrimIdxDiv {
			n.asm.Bin(machine.OpcDiv, machine.ScratchReg, res, machine.ExtraReg) // q
			n.asm.Bin(machine.OpcMul, machine.ClassSelectorReg, machine.ScratchReg, machine.ExtraReg)
			n.asm.Bin(machine.OpcSub, machine.ClassSelectorReg, res, machine.ClassSelectorReg) // rem
			n.asm.CmpI(machine.ClassSelectorReg, 0)
			n.asm.Jump(machine.OpcJeq, done)
			n.asm.Bin(machine.OpcXor, machine.ClassSelectorReg, res, machine.ExtraReg)
			n.asm.CmpI(machine.ClassSelectorReg, 0)
			n.asm.Jump(machine.OpcJge, done)
			n.asm.BinI(machine.OpcSubI, machine.ScratchReg, machine.ScratchReg, 1)
		} else {
			n.asm.Bin(machine.OpcMod, machine.ScratchReg, res, machine.ExtraReg)
			n.asm.CmpI(machine.ScratchReg, 0)
			n.asm.Jump(machine.OpcJeq, done)
			n.asm.Bin(machine.OpcXor, machine.ClassSelectorReg, res, machine.ExtraReg)
			n.asm.CmpI(machine.ClassSelectorReg, 0)
			n.asm.Jump(machine.OpcJge, done)
			n.asm.Bin(machine.OpcAdd, machine.ScratchReg, machine.ScratchReg, machine.ExtraReg)
		}
		n.asm.Label(done)
		n.asm.MovR(res, machine.ScratchReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxQuo:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.asm.CmpI(arg, int64(heap.SmallIntFor(0)))
		n.asm.Jump(machine.OpcJeq, fallthroughLabel)
		n.untag(res, rcvr)
		n.untag(machine.ExtraReg, arg)
		n.asm.Bin(machine.OpcDiv, res, res, machine.ExtraReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxBitAnd, primitives.PrimIdxBitOr, primitives.PrimIdxBitXor:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		if !n.Defects.BitwisePrimsUnsigned {
			// The corrected templates mirror the interpreter's negative
			// operand fallback.
			n.asm.CmpI(rcvr, 0)
			n.asm.Jump(machine.OpcJlt, fallthroughLabel)
			n.asm.CmpI(arg, 0)
			n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		}
		op := map[int]machine.Opc{
			primitives.PrimIdxBitAnd: machine.OpcAnd,
			primitives.PrimIdxBitOr:  machine.OpcOr,
			primitives.PrimIdxBitXor: machine.OpcXor,
		}[p.Index]
		n.asm.Bin(op, res, rcvr, arg)
		if op == machine.OpcXor {
			n.asm.BinI(machine.OpcOrI, res, res, 1)
		}
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxBitShift:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		if !n.Defects.BitwisePrimsUnsigned {
			n.asm.CmpI(rcvr, 0)
			n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		}
		neg := n.label("neg")
		n.asm.CmpI(arg, 0)
		n.asm.Jump(machine.OpcJlt, neg)
		n.cmpImm(arg, int64(heap.SmallIntFor(31)))
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
		n.untag(machine.ScratchReg, arg)
		n.untag(res, rcvr)
		n.asm.Bin(machine.OpcShl, res, res, machine.ScratchReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()
		n.asm.Label(neg)
		n.cmpImm(arg, int64(heap.SmallIntFor(-31)))
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.untag(machine.ScratchReg, arg)
		n.asm.MovI(machine.ClassSelectorReg, 0)
		n.asm.Bin(machine.OpcSub, machine.ScratchReg, machine.ClassSelectorReg, machine.ScratchReg)
		n.untag(res, rcvr)
		n.asm.Bin(machine.OpcSar, res, res, machine.ScratchReg)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxMakePoint:
		n.checkSmallIntOrFail(rcvr)
		// Behavioral defect: the compiled template does not validate the
		// argument, so any object becomes a point coordinate.
		if !n.Defects.BitwisePrimsUnsigned {
			n.checkSmallIntOrFail(arg)
		}
		n.asm.MovI(machine.TempReg, heap.ClassIndexPoint)
		n.asm.MovI(machine.ExtraReg, 2)
		n.asm.Emit(machine.Instr{Op: machine.OpcAlloc, Rd: res, Rs1: machine.TempReg, Rs2: machine.ExtraReg})
		n.asm.Store(res, heap.HeaderWords, rcvr)
		n.asm.Store(res, heap.HeaderWords+1, arg)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()

	case primitives.PrimIdxAsInteger:
		intCase := n.label("isInt")
		n.asm.BinI(machine.OpcAndI, machine.ScratchReg, rcvr, 1)
		n.asm.CmpI(machine.ScratchReg, 1)
		n.asm.Jump(machine.OpcJeq, intCase)
		n.checkClassIndexOrFail(rcvr, heap.ClassIndexFloat)
		n.asm.Load(res, rcvr, heap.HeaderWords)
		n.asm.Emit(machine.Instr{Op: machine.OpcF2I, Rd: res, Rs1: res})
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.asm.MovR(machine.ReceiverResultReg, res)
		n.asm.Ret()
		n.asm.Label(intCase)
		n.asm.Ret() // the receiver is already the result

	case primitives.PrimIdxAsCharacter:
		n.checkSmallIntOrFail(rcvr)
		n.asm.CmpI(rcvr, int64(heap.SmallIntFor(0)))
		n.asm.Jump(machine.OpcJlt, fallthroughLabel)
		n.cmpImm(rcvr, int64(heap.SmallIntFor(0x10FFFF)))
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
		n.asm.Ret()

	default:
		return fmt.Errorf("%w: no integer template for %s", ErrNotCompilable, p.Name)
	}
	return nil
}
