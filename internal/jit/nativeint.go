package jit

import (
	"fmt"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/primitives"
)

// genIntegerTemplate compiles the SmallInteger native methods.
func (n *NativeMethodCompiler) genIntegerTemplate(p *primitives.Primitive) error {
	rcvr, arg := ir.ReceiverResultReg, ir.Arg0Reg
	res := ir.TempReg

	switch p.Index {
	case primitives.PrimIdxAdd, primitives.PrimIdxSubtract:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		if p.Index == primitives.PrimIdxAdd {
			n.b.BinI(ir.OpcSubI, res, arg, 1)
			n.b.Bin(ir.OpcAdd, res, rcvr, res)
		} else {
			n.b.Bin(ir.OpcSub, res, rcvr, arg)
			n.b.BinI(ir.OpcAddI, res, res, 1)
		}
		n.cmpImm(res, int64(heap.SmallIntFor(heap.MaxSmallInt)))
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
		n.cmpImm(res, int64(heap.SmallIntFor(heap.MinSmallInt)))
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxMultiply:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.untag(res, rcvr)
		n.untag(ir.ExtraReg, arg)
		n.b.Bin(ir.OpcMul, res, res, ir.ExtraReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxLess, primitives.PrimIdxGreater, primitives.PrimIdxLessEq,
		primitives.PrimIdxGreatEq, primitives.PrimIdxEqual, primitives.PrimIdxNotEqual:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.b.Cmp(rcvr, arg) // tagged comparison preserves order
		jcc := map[int]ir.Opc{
			primitives.PrimIdxLess:     ir.OpcJlt,
			primitives.PrimIdxGreater:  ir.OpcJgt,
			primitives.PrimIdxLessEq:   ir.OpcJle,
			primitives.PrimIdxGreatEq:  ir.OpcJge,
			primitives.PrimIdxEqual:    ir.OpcJeq,
			primitives.PrimIdxNotEqual: ir.OpcJne,
		}[p.Index]
		n.retBool(jcc)

	case primitives.PrimIdxDivide:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.b.CmpI(arg, int64(heap.SmallIntFor(0)))
		n.b.Jump(ir.OpcJeq, fallthroughLabel)
		n.untag(res, rcvr)
		n.untag(ir.ExtraReg, arg)
		n.b.Bin(ir.OpcMod, ir.ScratchReg, res, ir.ExtraReg)
		n.b.CmpI(ir.ScratchReg, 0)
		n.b.Jump(ir.OpcJne, fallthroughLabel)
		n.b.Bin(ir.OpcDiv, res, res, ir.ExtraReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxDiv, primitives.PrimIdxMod:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.b.CmpI(arg, int64(heap.SmallIntFor(0)))
		n.b.Jump(ir.OpcJeq, fallthroughLabel)
		n.untag(res, rcvr)        // a
		n.untag(ir.ExtraReg, arg) // b
		done := n.label("done")
		if p.Index == primitives.PrimIdxDiv {
			n.b.Bin(ir.OpcDiv, ir.ScratchReg, res, ir.ExtraReg) // q
			n.b.Bin(ir.OpcMul, ir.ClassSelectorReg, ir.ScratchReg, ir.ExtraReg)
			n.b.Bin(ir.OpcSub, ir.ClassSelectorReg, res, ir.ClassSelectorReg) // rem
			n.b.CmpI(ir.ClassSelectorReg, 0)
			n.b.Jump(ir.OpcJeq, done)
			n.b.Bin(ir.OpcXor, ir.ClassSelectorReg, res, ir.ExtraReg)
			n.b.CmpI(ir.ClassSelectorReg, 0)
			n.b.Jump(ir.OpcJge, done)
			n.b.BinI(ir.OpcSubI, ir.ScratchReg, ir.ScratchReg, 1)
		} else {
			n.b.Bin(ir.OpcMod, ir.ScratchReg, res, ir.ExtraReg)
			n.b.CmpI(ir.ScratchReg, 0)
			n.b.Jump(ir.OpcJeq, done)
			n.b.Bin(ir.OpcXor, ir.ClassSelectorReg, res, ir.ExtraReg)
			n.b.CmpI(ir.ClassSelectorReg, 0)
			n.b.Jump(ir.OpcJge, done)
			n.b.Bin(ir.OpcAdd, ir.ScratchReg, ir.ScratchReg, ir.ExtraReg)
		}
		n.b.Label(done)
		n.b.MovR(res, ir.ScratchReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxQuo:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		n.b.CmpI(arg, int64(heap.SmallIntFor(0)))
		n.b.Jump(ir.OpcJeq, fallthroughLabel)
		n.untag(res, rcvr)
		n.untag(ir.ExtraReg, arg)
		n.b.Bin(ir.OpcDiv, res, res, ir.ExtraReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxBitAnd, primitives.PrimIdxBitOr, primitives.PrimIdxBitXor:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		if !n.Defects.BitwisePrimsUnsigned {
			// The corrected templates mirror the interpreter's negative
			// operand fallback.
			n.b.CmpI(rcvr, 0)
			n.b.Jump(ir.OpcJlt, fallthroughLabel)
			n.b.CmpI(arg, 0)
			n.b.Jump(ir.OpcJlt, fallthroughLabel)
		}
		op := map[int]ir.Opc{
			primitives.PrimIdxBitAnd: ir.OpcAnd,
			primitives.PrimIdxBitOr:  ir.OpcOr,
			primitives.PrimIdxBitXor: ir.OpcXor,
		}[p.Index]
		n.b.Bin(op, res, rcvr, arg)
		if op == ir.OpcXor {
			n.b.BinI(ir.OpcOrI, res, res, 1)
		}
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxBitShift:
		n.checkSmallIntOrFail(rcvr)
		n.checkSmallIntOrFail(arg)
		if !n.Defects.BitwisePrimsUnsigned {
			n.b.CmpI(rcvr, 0)
			n.b.Jump(ir.OpcJlt, fallthroughLabel)
		}
		neg := n.label("neg")
		n.b.CmpI(arg, 0)
		n.b.Jump(ir.OpcJlt, neg)
		n.cmpImm(arg, int64(heap.SmallIntFor(31)))
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
		n.untag(ir.ScratchReg, arg)
		n.untag(res, rcvr)
		n.b.Bin(ir.OpcShl, res, res, ir.ScratchReg)
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()
		n.b.Label(neg)
		n.cmpImm(arg, int64(heap.SmallIntFor(-31)))
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.untag(ir.ScratchReg, arg)
		n.b.MovI(ir.ClassSelectorReg, 0)
		n.b.Bin(ir.OpcSub, ir.ScratchReg, ir.ClassSelectorReg, ir.ScratchReg)
		n.untag(res, rcvr)
		n.b.Bin(ir.OpcSar, res, res, ir.ScratchReg)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxMakePoint:
		n.checkSmallIntOrFail(rcvr)
		// Behavioral defect: the compiled template does not validate the
		// argument, so any object becomes a point coordinate.
		if !n.Defects.BitwisePrimsUnsigned {
			n.checkSmallIntOrFail(arg)
		}
		n.b.MovI(ir.TempReg, heap.ClassIndexPoint)
		n.b.MovI(ir.ExtraReg, 2)
		n.b.Emit(ir.Instr{Op: ir.OpcAlloc, Rd: res, Rs1: ir.TempReg, Rs2: ir.ExtraReg})
		n.b.Store(res, heap.HeaderWords, rcvr)
		n.b.Store(res, heap.HeaderWords+1, arg)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()

	case primitives.PrimIdxAsInteger:
		intCase := n.label("isInt")
		n.b.BinI(ir.OpcAndI, ir.ScratchReg, rcvr, 1)
		n.b.CmpI(ir.ScratchReg, 1)
		n.b.Jump(ir.OpcJeq, intCase)
		n.checkClassIndexOrFail(rcvr, heap.ClassIndexFloat)
		n.b.Load(res, rcvr, heap.HeaderWords)
		n.b.Emit(ir.Instr{Op: ir.OpcF2I, Rd: res, Rs1: res})
		n.rangeCheckOrFail(res)
		n.tag(res)
		n.b.MovR(ir.ReceiverResultReg, res)
		n.b.Ret()
		n.b.Label(intCase)
		n.b.Ret() // the receiver is already the result

	case primitives.PrimIdxAsCharacter:
		n.checkSmallIntOrFail(rcvr)
		n.b.CmpI(rcvr, int64(heap.SmallIntFor(0)))
		n.b.Jump(ir.OpcJlt, fallthroughLabel)
		n.cmpImm(rcvr, int64(heap.SmallIntFor(0x10FFFF)))
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
		n.b.Ret()

	default:
		return fmt.Errorf("%w: no integer template for %s", ErrNotCompilable, p.Name)
	}
	return nil
}
