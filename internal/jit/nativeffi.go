package jit

import (
	"fmt"
	"strings"

	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/primitives"
)

// genFFITemplate compiles the FFI acceleration native methods. In the
// production configuration these are never reached (the whole family is
// stubbed as missing, §5.3); the pristine configuration compiles the full
// templates below, which the clean-VM sanity tests exercise.
func (n *NativeMethodCompiler) genFFITemplate(p *primitives.Primitive) error {
	name := p.Name
	switch {
	case strings.HasPrefix(name, "primitiveFFIInt") || strings.HasPrefix(name, "primitiveFFIUint"):
		signed := strings.HasPrefix(name, "primitiveFFIInt")
		width := parseWidth(name)
		if strings.HasSuffix(name, "AtPut") {
			n.genFFIIntAtPut(width)
		} else {
			n.genFFIIntAt(width, signed)
		}
	case strings.HasPrefix(name, "primitiveFFIFloat"):
		width := parseWidth(name)
		if strings.HasSuffix(name, "AtPut") {
			n.genFFIFloatAtPut(width)
		} else {
			n.genFFIFloatAt(width)
		}
	case name == "primitiveFFIPointerAt":
		n.genFFIIntAt(64, true) // pointer loads answer the tagged raw word
	case name == "primitiveFFIPointerAtPut":
		n.genFFIPointerAtPut()
	case strings.HasPrefix(name, "primitiveFFIStructField"):
		field, put := parseStructField(name)
		n.genFFIStructField(field, put)
	case name == "primitiveFFIAllocate":
		n.genFFIAllocate()
	case name == "primitiveFFIFree":
		n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexExternalAddr)
		n.b.MovI(ir.ReceiverResultReg, int64(n.OM.NilObj))
		n.b.Ret()
	case name == "primitiveFFIStrLen":
		n.genFFIStrLen()
	case name == "primitiveFFIAddressOf":
		n.checkPointerOrFail(ir.ReceiverResultReg)
		n.b.BinI(ir.OpcSarI, ir.TempReg, ir.ReceiverResultReg, 0)
		n.b.MovI(ir.ScratchReg, 0x3FFFFFFF)
		n.b.Bin(ir.OpcAnd, ir.TempReg, ir.TempReg, ir.ScratchReg)
		n.tag(ir.TempReg)
		n.b.MovR(ir.ReceiverResultReg, ir.TempReg)
		n.b.Ret()
	case name == "primitiveFFIMemCopy":
		n.genFFIMemCopy()
	case name == "primitiveFFIMemSet":
		n.genFFIMemSet()
	default:
		return fmt.Errorf("%w: no FFI template for %s", ErrNotCompilable, name)
	}
	return nil
}

func parseWidth(name string) uint {
	for _, w := range []string{"64", "32", "16", "8"} {
		if strings.Contains(name, w) {
			switch w {
			case "64":
				return 64
			case "32":
				return 32
			case "16":
				return 16
			default:
				return 8
			}
		}
	}
	return 64
}

func parseStructField(name string) (field int, put bool) {
	put = strings.HasSuffix(name, "AtPut")
	fmt.Sscanf(strings.TrimPrefix(name, "primitiveFFIStructField"), "%d", &field)
	return field, put
}

// checkExternalAddressAndIndex validates the (ExternalAddress, tagged
// index) pair and leaves the untagged index in idxOut.
func (n *NativeMethodCompiler) checkExternalAddressAndIndex(idxOut ir.Reg) {
	n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.checkSmallIntOrFail(ir.Arg0Reg)
	n.slotBoundsCheckOrFail(ir.ReceiverResultReg, ir.Arg0Reg, idxOut)
}

func (n *NativeMethodCompiler) genFFIIntAt(width uint, signed bool) {
	res := ir.TempReg
	n.checkExternalAddressAndIndex(res)
	n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: res, Rs1: ir.ReceiverResultReg, Rs2: res})
	if width < 64 {
		n.b.BinI(ir.OpcShlI, res, res, int64(64-width))
		if signed {
			n.b.BinI(ir.OpcSarI, res, res, int64(64-width))
		} else {
			n.b.MovI(ir.ScratchReg, int64(64-width))
			n.b.Emit(ir.Instr{Op: ir.OpcShr, Rd: res, Rs1: res, Rs2: ir.ScratchReg})
		}
	}
	n.rangeCheckOrFail(res)
	n.tag(res)
	n.b.MovR(ir.ReceiverResultReg, res)
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIIntAtPut(width uint) {
	res := ir.TempReg
	n.checkExternalAddressAndIndex(res)
	n.checkSmallIntOrFail(ir.Arg1Reg)
	n.untag(ir.ExtraReg, ir.Arg1Reg)
	if width < 64 {
		// Store the truncated two's-complement representation, sign
		// preserved for signed widths like the interpreter's coercion.
		n.b.BinI(ir.OpcShlI, ir.ExtraReg, ir.ExtraReg, int64(64-width))
		n.b.BinI(ir.OpcSarI, ir.ExtraReg, ir.ExtraReg, int64(64-width))
	}
	n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ExtraReg, Rs1: ir.ReceiverResultReg, Rs2: res})
	n.b.MovR(ir.ReceiverResultReg, ir.Arg1Reg)
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIFloatAt(width uint) {
	res := ir.TempReg
	n.checkExternalAddressAndIndex(res)
	n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: res, Rs1: ir.ReceiverResultReg, Rs2: res})
	if width == 32 {
		n.b.Emit(ir.Instr{Op: ir.OpcF32To64, Rd: res, Rs1: res})
	}
	n.b.Emit(ir.Instr{Op: ir.OpcAllocFloat, Rd: ir.ReceiverResultReg, Rs1: res})
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIFloatAtPut(width uint) {
	res := ir.TempReg
	n.checkExternalAddressAndIndex(res)
	n.checkClassIndexOrFail(ir.Arg1Reg, heap.ClassIndexFloat)
	n.b.Load(ir.ExtraReg, ir.Arg1Reg, heap.HeaderWords)
	if width == 32 {
		n.b.Emit(ir.Instr{Op: ir.OpcF64To32, Rd: ir.ExtraReg, Rs1: ir.ExtraReg})
	}
	n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ExtraReg, Rs1: ir.ReceiverResultReg, Rs2: res})
	n.b.MovR(ir.ReceiverResultReg, ir.Arg1Reg)
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIPointerAtPut() {
	res := ir.TempReg
	n.checkExternalAddressAndIndex(res)
	// The words-format store keeps the untagged representation the
	// interpreter's StoreSlotChecked uses.
	n.untag(ir.ExtraReg, ir.Arg1Reg)
	n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ExtraReg, Rs1: ir.ReceiverResultReg, Rs2: res})
	n.b.MovR(ir.ReceiverResultReg, ir.Arg1Reg)
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIStructField(field int, put bool) {
	n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexExternalStruct)
	// Bounds: the structure must have at least field+1 slots.
	n.b.Load(ir.ScratchReg, ir.ReceiverResultReg, 0)
	n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderSlotMask)
	n.b.CmpI(ir.ScratchReg, int64(field+1))
	n.b.Jump(ir.OpcJlt, fallthroughLabel)
	if put {
		n.b.Store(ir.ReceiverResultReg, heap.HeaderWords+int64(field), ir.Arg0Reg)
		n.b.MovR(ir.ReceiverResultReg, ir.Arg0Reg)
	} else {
		n.b.Load(ir.TempReg, ir.ReceiverResultReg, heap.HeaderWords+int64(field))
		n.b.MovR(ir.ReceiverResultReg, ir.TempReg)
	}
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIAllocate() {
	n.checkSmallIntOrFail(ir.ReceiverResultReg)
	n.b.CmpI(ir.ReceiverResultReg, int64(heap.SmallIntFor(0)))
	n.b.Jump(ir.OpcJlt, fallthroughLabel)
	n.cmpImm(ir.ReceiverResultReg, int64(heap.SmallIntFor(1<<16)))
	n.b.Jump(ir.OpcJgt, fallthroughLabel)
	n.untag(ir.ExtraReg, ir.ReceiverResultReg)
	n.b.MovI(ir.TempReg, heap.ClassIndexExternalAddr)
	n.b.Emit(ir.Instr{Op: ir.OpcAlloc, Rd: ir.ReceiverResultReg, Rs1: ir.TempReg, Rs2: ir.ExtraReg})
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIStrLen() {
	n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.b.Load(ir.ClassSelectorReg, ir.ReceiverResultReg, 0)
	n.b.BinI(ir.OpcAndI, ir.ClassSelectorReg, ir.ClassSelectorReg, heap.HeaderSlotMask)
	loop := n.label("scan")
	done := n.label("done")
	n.b.MovI(ir.TempReg, 0) // length counter
	n.b.Label(loop)
	n.b.Cmp(ir.TempReg, ir.ClassSelectorReg)
	n.b.Jump(ir.OpcJge, done)
	n.b.BinI(ir.OpcAddI, ir.ScratchReg, ir.TempReg, 1)
	n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: ir.ScratchReg, Rs1: ir.ReceiverResultReg, Rs2: ir.ScratchReg})
	n.b.CmpI(ir.ScratchReg, 0)
	n.b.Jump(ir.OpcJeq, done)
	n.b.BinI(ir.OpcAddI, ir.TempReg, ir.TempReg, 1)
	n.b.Jump(ir.OpcJmp, loop)
	n.b.Label(done)
	n.tag(ir.TempReg)
	n.b.MovR(ir.ReceiverResultReg, ir.TempReg)
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIMemCopy() {
	n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.checkClassIndexOrFail(ir.Arg0Reg, heap.ClassIndexExternalAddr)
	n.checkSmallIntOrFail(ir.Arg1Reg)
	n.b.CmpI(ir.Arg1Reg, int64(heap.SmallIntFor(0)))
	n.b.Jump(ir.OpcJlt, fallthroughLabel)
	n.untag(ir.TempReg, ir.Arg1Reg) // n
	for _, obj := range []ir.Reg{ir.ReceiverResultReg, ir.Arg0Reg} {
		n.b.Load(ir.ScratchReg, obj, 0)
		n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderSlotMask)
		n.b.Cmp(ir.TempReg, ir.ScratchReg)
		n.b.Jump(ir.OpcJgt, fallthroughLabel)
	}
	loop := n.label("copy")
	done := n.label("done")
	n.b.MovI(ir.ExtraReg, 1) // cursor (1-based body offset)
	n.b.Label(loop)
	n.b.Cmp(ir.ExtraReg, ir.TempReg)
	n.b.Jump(ir.OpcJgt, done)
	n.b.Emit(ir.Instr{Op: ir.OpcLoadX, Rd: ir.ScratchReg, Rs1: ir.ReceiverResultReg, Rs2: ir.ExtraReg})
	n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ScratchReg, Rs1: ir.Arg0Reg, Rs2: ir.ExtraReg})
	n.b.BinI(ir.OpcAddI, ir.ExtraReg, ir.ExtraReg, 1)
	n.b.Jump(ir.OpcJmp, loop)
	n.b.Label(done)
	n.b.MovR(ir.ReceiverResultReg, ir.Arg0Reg)
	n.b.Ret()
}

func (n *NativeMethodCompiler) genFFIMemSet() {
	n.checkClassIndexOrFail(ir.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.checkSmallIntOrFail(ir.Arg0Reg)
	n.checkSmallIntOrFail(ir.Arg1Reg)
	n.b.CmpI(ir.Arg1Reg, int64(heap.SmallIntFor(0)))
	n.b.Jump(ir.OpcJlt, fallthroughLabel)
	n.untag(ir.TempReg, ir.Arg1Reg) // n
	n.b.Load(ir.ScratchReg, ir.ReceiverResultReg, 0)
	n.b.BinI(ir.OpcAndI, ir.ScratchReg, ir.ScratchReg, heap.HeaderSlotMask)
	n.b.Cmp(ir.TempReg, ir.ScratchReg)
	n.b.Jump(ir.OpcJgt, fallthroughLabel)
	n.untag(ir.ClassSelectorReg, ir.Arg0Reg) // raw value
	loop := n.label("set")
	done := n.label("done")
	n.b.MovI(ir.ExtraReg, 1)
	n.b.Label(loop)
	n.b.Cmp(ir.ExtraReg, ir.TempReg)
	n.b.Jump(ir.OpcJgt, done)
	n.b.Emit(ir.Instr{Op: ir.OpcStoreX, Rd: ir.ClassSelectorReg, Rs1: ir.ReceiverResultReg, Rs2: ir.ExtraReg})
	n.b.BinI(ir.OpcAddI, ir.ExtraReg, ir.ExtraReg, 1)
	n.b.Jump(ir.OpcJmp, loop)
	n.b.Label(done)
	n.b.Ret()
}
