package jit

import (
	"fmt"
	"strings"

	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// genFFITemplate compiles the FFI acceleration native methods. In the
// production configuration these are never reached (the whole family is
// stubbed as missing, §5.3); the pristine configuration compiles the full
// templates below, which the clean-VM sanity tests exercise.
func (n *NativeMethodCompiler) genFFITemplate(p *primitives.Primitive) error {
	name := p.Name
	switch {
	case strings.HasPrefix(name, "primitiveFFIInt") || strings.HasPrefix(name, "primitiveFFIUint"):
		signed := strings.HasPrefix(name, "primitiveFFIInt")
		width := parseWidth(name)
		if strings.HasSuffix(name, "AtPut") {
			n.genFFIIntAtPut(width)
		} else {
			n.genFFIIntAt(width, signed)
		}
	case strings.HasPrefix(name, "primitiveFFIFloat"):
		width := parseWidth(name)
		if strings.HasSuffix(name, "AtPut") {
			n.genFFIFloatAtPut(width)
		} else {
			n.genFFIFloatAt(width)
		}
	case name == "primitiveFFIPointerAt":
		n.genFFIIntAt(64, true) // pointer loads answer the tagged raw word
	case name == "primitiveFFIPointerAtPut":
		n.genFFIPointerAtPut()
	case strings.HasPrefix(name, "primitiveFFIStructField"):
		field, put := parseStructField(name)
		n.genFFIStructField(field, put)
	case name == "primitiveFFIAllocate":
		n.genFFIAllocate()
	case name == "primitiveFFIFree":
		n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexExternalAddr)
		n.asm.MovI(machine.ReceiverResultReg, int64(n.OM.NilObj))
		n.asm.Ret()
	case name == "primitiveFFIStrLen":
		n.genFFIStrLen()
	case name == "primitiveFFIAddressOf":
		n.checkPointerOrFail(machine.ReceiverResultReg)
		n.asm.BinI(machine.OpcSarI, machine.TempReg, machine.ReceiverResultReg, 0)
		n.asm.MovI(machine.ScratchReg, 0x3FFFFFFF)
		n.asm.Bin(machine.OpcAnd, machine.TempReg, machine.TempReg, machine.ScratchReg)
		n.tag(machine.TempReg)
		n.asm.MovR(machine.ReceiverResultReg, machine.TempReg)
		n.asm.Ret()
	case name == "primitiveFFIMemCopy":
		n.genFFIMemCopy()
	case name == "primitiveFFIMemSet":
		n.genFFIMemSet()
	default:
		return fmt.Errorf("%w: no FFI template for %s", ErrNotCompilable, name)
	}
	return nil
}

func parseWidth(name string) uint {
	for _, w := range []string{"64", "32", "16", "8"} {
		if strings.Contains(name, w) {
			switch w {
			case "64":
				return 64
			case "32":
				return 32
			case "16":
				return 16
			default:
				return 8
			}
		}
	}
	return 64
}

func parseStructField(name string) (field int, put bool) {
	put = strings.HasSuffix(name, "AtPut")
	fmt.Sscanf(strings.TrimPrefix(name, "primitiveFFIStructField"), "%d", &field)
	return field, put
}

// checkExternalAddressAndIndex validates the (ExternalAddress, tagged
// index) pair and leaves the untagged index in idxOut.
func (n *NativeMethodCompiler) checkExternalAddressAndIndex(idxOut machine.Reg) {
	n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.checkSmallIntOrFail(machine.Arg0Reg)
	n.slotBoundsCheckOrFail(machine.ReceiverResultReg, machine.Arg0Reg, idxOut)
}

func (n *NativeMethodCompiler) genFFIIntAt(width uint, signed bool) {
	res := machine.TempReg
	n.checkExternalAddressAndIndex(res)
	n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: res, Rs1: machine.ReceiverResultReg, Rs2: res})
	if width < 64 {
		n.asm.BinI(machine.OpcShlI, res, res, int64(64-width))
		if signed {
			n.asm.BinI(machine.OpcSarI, res, res, int64(64-width))
		} else {
			n.asm.MovI(machine.ScratchReg, int64(64-width))
			n.asm.Emit(machine.Instr{Op: machine.OpcShr, Rd: res, Rs1: res, Rs2: machine.ScratchReg})
		}
	}
	n.rangeCheckOrFail(res)
	n.tag(res)
	n.asm.MovR(machine.ReceiverResultReg, res)
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIIntAtPut(width uint) {
	res := machine.TempReg
	n.checkExternalAddressAndIndex(res)
	n.checkSmallIntOrFail(machine.Arg1Reg)
	n.untag(machine.ExtraReg, machine.Arg1Reg)
	if width < 64 {
		// Store the truncated two's-complement representation, sign
		// preserved for signed widths like the interpreter's coercion.
		n.asm.BinI(machine.OpcShlI, machine.ExtraReg, machine.ExtraReg, int64(64-width))
		n.asm.BinI(machine.OpcSarI, machine.ExtraReg, machine.ExtraReg, int64(64-width))
	}
	n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ExtraReg, Rs1: machine.ReceiverResultReg, Rs2: res})
	n.asm.MovR(machine.ReceiverResultReg, machine.Arg1Reg)
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIFloatAt(width uint) {
	res := machine.TempReg
	n.checkExternalAddressAndIndex(res)
	n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: res, Rs1: machine.ReceiverResultReg, Rs2: res})
	if width == 32 {
		n.asm.Emit(machine.Instr{Op: machine.OpcF32To64, Rd: res, Rs1: res})
	}
	n.asm.Emit(machine.Instr{Op: machine.OpcAllocFloat, Rd: machine.ReceiverResultReg, Rs1: res})
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIFloatAtPut(width uint) {
	res := machine.TempReg
	n.checkExternalAddressAndIndex(res)
	n.checkClassIndexOrFail(machine.Arg1Reg, heap.ClassIndexFloat)
	n.asm.Load(machine.ExtraReg, machine.Arg1Reg, heap.HeaderWords)
	if width == 32 {
		n.asm.Emit(machine.Instr{Op: machine.OpcF64To32, Rd: machine.ExtraReg, Rs1: machine.ExtraReg})
	}
	n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ExtraReg, Rs1: machine.ReceiverResultReg, Rs2: res})
	n.asm.MovR(machine.ReceiverResultReg, machine.Arg1Reg)
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIPointerAtPut() {
	res := machine.TempReg
	n.checkExternalAddressAndIndex(res)
	// The words-format store keeps the untagged representation the
	// interpreter's StoreSlotChecked uses.
	n.untag(machine.ExtraReg, machine.Arg1Reg)
	n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ExtraReg, Rs1: machine.ReceiverResultReg, Rs2: res})
	n.asm.MovR(machine.ReceiverResultReg, machine.Arg1Reg)
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIStructField(field int, put bool) {
	n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexExternalStruct)
	// Bounds: the structure must have at least field+1 slots.
	n.asm.Load(machine.ScratchReg, machine.ReceiverResultReg, 0)
	n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderSlotMask)
	n.asm.CmpI(machine.ScratchReg, int64(field+1))
	n.asm.Jump(machine.OpcJlt, fallthroughLabel)
	if put {
		n.asm.Store(machine.ReceiverResultReg, heap.HeaderWords+int64(field), machine.Arg0Reg)
		n.asm.MovR(machine.ReceiverResultReg, machine.Arg0Reg)
	} else {
		n.asm.Load(machine.TempReg, machine.ReceiverResultReg, heap.HeaderWords+int64(field))
		n.asm.MovR(machine.ReceiverResultReg, machine.TempReg)
	}
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIAllocate() {
	n.checkSmallIntOrFail(machine.ReceiverResultReg)
	n.asm.CmpI(machine.ReceiverResultReg, int64(heap.SmallIntFor(0)))
	n.asm.Jump(machine.OpcJlt, fallthroughLabel)
	n.cmpImm(machine.ReceiverResultReg, int64(heap.SmallIntFor(1<<16)))
	n.asm.Jump(machine.OpcJgt, fallthroughLabel)
	n.untag(machine.ExtraReg, machine.ReceiverResultReg)
	n.asm.MovI(machine.TempReg, heap.ClassIndexExternalAddr)
	n.asm.Emit(machine.Instr{Op: machine.OpcAlloc, Rd: machine.ReceiverResultReg, Rs1: machine.TempReg, Rs2: machine.ExtraReg})
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIStrLen() {
	n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.asm.Load(machine.ClassSelectorReg, machine.ReceiverResultReg, 0)
	n.asm.BinI(machine.OpcAndI, machine.ClassSelectorReg, machine.ClassSelectorReg, heap.HeaderSlotMask)
	loop := n.label("scan")
	done := n.label("done")
	n.asm.MovI(machine.TempReg, 0) // length counter
	n.asm.Label(loop)
	n.asm.Cmp(machine.TempReg, machine.ClassSelectorReg)
	n.asm.Jump(machine.OpcJge, done)
	n.asm.BinI(machine.OpcAddI, machine.ScratchReg, machine.TempReg, 1)
	n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: machine.ScratchReg, Rs1: machine.ReceiverResultReg, Rs2: machine.ScratchReg})
	n.asm.CmpI(machine.ScratchReg, 0)
	n.asm.Jump(machine.OpcJeq, done)
	n.asm.BinI(machine.OpcAddI, machine.TempReg, machine.TempReg, 1)
	n.asm.Jump(machine.OpcJmp, loop)
	n.asm.Label(done)
	n.tag(machine.TempReg)
	n.asm.MovR(machine.ReceiverResultReg, machine.TempReg)
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIMemCopy() {
	n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.checkClassIndexOrFail(machine.Arg0Reg, heap.ClassIndexExternalAddr)
	n.checkSmallIntOrFail(machine.Arg1Reg)
	n.asm.CmpI(machine.Arg1Reg, int64(heap.SmallIntFor(0)))
	n.asm.Jump(machine.OpcJlt, fallthroughLabel)
	n.untag(machine.TempReg, machine.Arg1Reg) // n
	for _, obj := range []machine.Reg{machine.ReceiverResultReg, machine.Arg0Reg} {
		n.asm.Load(machine.ScratchReg, obj, 0)
		n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderSlotMask)
		n.asm.Cmp(machine.TempReg, machine.ScratchReg)
		n.asm.Jump(machine.OpcJgt, fallthroughLabel)
	}
	loop := n.label("copy")
	done := n.label("done")
	n.asm.MovI(machine.ExtraReg, 1) // cursor (1-based body offset)
	n.asm.Label(loop)
	n.asm.Cmp(machine.ExtraReg, machine.TempReg)
	n.asm.Jump(machine.OpcJgt, done)
	n.asm.Emit(machine.Instr{Op: machine.OpcLoadX, Rd: machine.ScratchReg, Rs1: machine.ReceiverResultReg, Rs2: machine.ExtraReg})
	n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ScratchReg, Rs1: machine.Arg0Reg, Rs2: machine.ExtraReg})
	n.asm.BinI(machine.OpcAddI, machine.ExtraReg, machine.ExtraReg, 1)
	n.asm.Jump(machine.OpcJmp, loop)
	n.asm.Label(done)
	n.asm.MovR(machine.ReceiverResultReg, machine.Arg0Reg)
	n.asm.Ret()
}

func (n *NativeMethodCompiler) genFFIMemSet() {
	n.checkClassIndexOrFail(machine.ReceiverResultReg, heap.ClassIndexExternalAddr)
	n.checkSmallIntOrFail(machine.Arg0Reg)
	n.checkSmallIntOrFail(machine.Arg1Reg)
	n.asm.CmpI(machine.Arg1Reg, int64(heap.SmallIntFor(0)))
	n.asm.Jump(machine.OpcJlt, fallthroughLabel)
	n.untag(machine.TempReg, machine.Arg1Reg) // n
	n.asm.Load(machine.ScratchReg, machine.ReceiverResultReg, 0)
	n.asm.BinI(machine.OpcAndI, machine.ScratchReg, machine.ScratchReg, heap.HeaderSlotMask)
	n.asm.Cmp(machine.TempReg, machine.ScratchReg)
	n.asm.Jump(machine.OpcJgt, fallthroughLabel)
	n.untag(machine.ClassSelectorReg, machine.Arg0Reg) // raw value
	loop := n.label("set")
	done := n.label("done")
	n.asm.MovI(machine.ExtraReg, 1)
	n.asm.Label(loop)
	n.asm.Cmp(machine.ExtraReg, machine.TempReg)
	n.asm.Jump(machine.OpcJgt, done)
	n.asm.Emit(machine.Instr{Op: machine.OpcStoreX, Rd: machine.ClassSelectorReg, Rs1: machine.ReceiverResultReg, Rs2: machine.ExtraReg})
	n.asm.BinI(machine.OpcAddI, machine.ExtraReg, machine.ExtraReg, 1)
	n.asm.Jump(machine.OpcJmp, loop)
	n.asm.Label(done)
	n.asm.Ret()
}
