package jit

import (
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

func compileBC(t *testing.T, v Variant, isa machine.ISA, op bytecode.Op, stack []heap.Word, sw defects.Switches) (*CompiledMethod, *heap.ObjectMemory) {
	t.Helper()
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(op)}}
	cogit := NewCogit(v, isa, om, sw)
	cm, err := cogit.CompileBytecode(m, stack)
	if err != nil {
		t.Fatalf("compile %v/%v: %v", v, op, err)
	}
	return cm, om
}

// runBC executes a compiled byte-code test method with the standard frame.
func runBC(t *testing.T, om *heap.ObjectMemory, cm *CompiledMethod, receiver heap.Word, temps []heap.Word) (*machine.CPU, *machine.Stop) {
	t.Helper()
	cpu, err := machine.New(om)
	if err != nil {
		t.Fatal(err)
	}
	cpu.Reset()
	for _, w := range temps {
		cpu.Regs[machine.SP]--
		om.Mem.MustWrite(cpu.Regs[machine.SP], w)
	}
	cpu.Regs[machine.SP]--
	om.Mem.MustWrite(cpu.Regs[machine.SP], machine.SentinelReturn)
	cpu.Regs[machine.ReceiverResultReg] = receiver
	cpu.Install(cm.Prog)
	return cpu, cpu.Run(10000)
}

func operandStack(t *testing.T, cpu *machine.CPU) []heap.Word {
	t.Helper()
	raw, err := cpu.StackSlice(cpu.Regs[machine.FP])
	if err != nil {
		t.Fatal(err)
	}
	out := make([]heap.Word, len(raw))
	for i, w := range raw {
		out[len(raw)-1-i] = w // bottom first
	}
	return out
}

func allVariants() []Variant {
	return []Variant{SimpleStackBasedCogit, StackToRegisterCogit, RegisterAllocatingCogit}
}

func TestCompiledAddFastPath(t *testing.T) {
	for _, v := range allVariants() {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			cm, om := compileBC(t, v, isa, bytecode.OpPrimAdd,
				[]heap.Word{heap.SmallIntFor(3), heap.SmallIntFor(4)}, defects.ProductionVM())
			cpu, stop := runBC(t, om, cm, om.NilObj, nil)
			if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkEndFall {
				t.Fatalf("%v/%v: stop %v", v, isa, stop)
			}
			st := operandStack(t, cpu)
			if len(st) != 1 || st[0] != heap.SmallIntFor(7) {
				t.Fatalf("%v/%v: stack %v", v, isa, st)
			}
		}
	}
}

func TestCompiledAddOverflowTakesSend(t *testing.T) {
	for _, v := range allVariants() {
		cm, om := compileBC(t, v, machine.ISAAmd64Like, bytecode.OpPrimAdd,
			[]heap.Word{heap.SmallIntFor(heap.MaxSmallInt), heap.SmallIntFor(1)}, defects.ProductionVM())
		cpu, stop := runBC(t, om, cm, om.NilObj, nil)
		if stop.Kind != machine.StopTrampoline {
			t.Fatalf("%v: stop %v", v, stop)
		}
		sel, ok := cm.SelectorAt(int64(cpu.Regs[machine.ClassSelectorReg]))
		if !ok || sel.Name != "+" || sel.NumArgs != 1 {
			t.Fatalf("%v: selector %v %v", v, sel, ok)
		}
		// The operands must be restored on the stack for the send
		// (skipping the trampoline return address at the top).
		raw, _ := cpu.StackSlice(cpu.Regs[machine.FP])
		if len(raw) != 3 { // retaddr + two operands
			t.Fatalf("%v: send frame %v", v, raw)
		}
	}
}

func TestCompiledComparisonPushesBool(t *testing.T) {
	cm, om := compileBC(t, StackToRegisterCogit, machine.ISAAmd64Like, bytecode.OpPrimLessThan,
		[]heap.Word{heap.SmallIntFor(-5), heap.SmallIntFor(3)}, defects.ProductionVM())
	cpu, stop := runBC(t, om, cm, om.NilObj, nil)
	if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkEndFall {
		t.Fatalf("stop %v", stop)
	}
	st := operandStack(t, cpu)
	if len(st) != 1 || st[0] != om.TrueObj {
		t.Fatalf("-5 < 3 should push true: %v", st)
	}
}

func TestCompiledJumpTaken(t *testing.T) {
	cm, om := compileBC(t, StackToRegisterCogit, machine.ISAArm32Like, bytecode.OpShortJumpIfTrue1,
		[]heap.Word{0}, defects.ProductionVM())
	_ = cm
	// Rebuild with the true object (needs om first for its oop).
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpShortJumpIfTrue1)}}
	cogit := NewCogit(StackToRegisterCogit, machine.ISAArm32Like, om, defects.ProductionVM())
	cm2, err := cogit.CompileBytecode(m, []heap.Word{om.TrueObj})
	if err != nil {
		t.Fatal(err)
	}
	_, stop := runBC(t, om, cm2, om.NilObj, nil)
	if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkJumpTaken {
		t.Fatalf("jump on true: %v", stop)
	}

	cm3, err := cogit.CompileBytecode(m, []heap.Word{om.FalseObj})
	if err != nil {
		t.Fatal(err)
	}
	_, stop = runBC(t, om, cm3, om.NilObj, nil)
	if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkEndFall {
		t.Fatalf("fall through on false: %v", stop)
	}
}

func TestCompiledReturnTop(t *testing.T) {
	cm, om := compileBC(t, RegisterAllocatingCogit, machine.ISAAmd64Like, bytecode.OpReturnTop,
		[]heap.Word{heap.SmallIntFor(9)}, defects.ProductionVM())
	cpu, stop := runBC(t, om, cm, om.NilObj, nil)
	if stop.Kind != machine.StopReturned {
		t.Fatalf("stop %v", stop)
	}
	if cpu.Regs[machine.ReceiverResultReg] != heap.SmallIntFor(9) {
		t.Fatalf("result %v", cpu.Regs[machine.ReceiverResultReg])
	}
}

func TestCompiledTempAccess(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", NumArgs: 2, Code: []byte{byte(bytecode.OpPushTemporaryVariable0 + 1)}}
	for _, v := range allVariants() {
		cogit := NewCogit(v, machine.ISAAmd64Like, om, defects.ProductionVM())
		cm, err := cogit.CompileBytecode(m, nil)
		if err != nil {
			t.Fatal(err)
		}
		cpu, stop := runBC(t, om, cm, om.NilObj, []heap.Word{heap.SmallIntFor(10), heap.SmallIntFor(20)})
		if stop.Kind != machine.StopBreakpoint {
			t.Fatalf("%v: stop %v", v, stop)
		}
		st := operandStack(t, cpu)
		if len(st) != 1 || st[0] != heap.SmallIntFor(20) {
			t.Fatalf("%v: pushTemp1 gave %v", v, st)
		}
	}
}

func TestSimpleVsStackToRegisterCodeShape(t *testing.T) {
	// The parse-time simulation stack must eliminate machine stack traffic:
	// push constant + pop compiles to nothing but the frame skeleton.
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPopStackTop)}}
	input := []heap.Word{heap.SmallIntFor(1)}

	simple, err := NewCogit(SimpleStackBasedCogit, machine.ISAAmd64Like, om, defects.Switches{}).CompileBytecode(m, input)
	if err != nil {
		t.Fatal(err)
	}
	s2r, err := NewCogit(StackToRegisterCogit, machine.ISAAmd64Like, om, defects.Switches{}).CompileBytecode(m, input)
	if err != nil {
		t.Fatal(err)
	}
	if s2r.Prog.Len() >= simple.Prog.Len() {
		t.Fatalf("stack-to-register (%d instrs) should beat simple (%d instrs)",
			s2r.Prog.Len(), simple.Prog.Len())
	}
}

func TestVariantsProduceDifferentRegisterAssignments(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimAdd)}}
	input := []heap.Word{heap.SmallIntFor(1), heap.SmallIntFor(2)}
	s2r, err := NewCogit(StackToRegisterCogit, machine.ISAAmd64Like, om, defects.Switches{}).CompileBytecode(m, input)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := NewCogit(RegisterAllocatingCogit, machine.ISAAmd64Like, om, defects.Switches{}).CompileBytecode(m, input)
	if err != nil {
		t.Fatal(err)
	}
	if s2r.Prog.Disassemble() == ra.Prog.Disassemble() {
		t.Fatal("linear-scan allocation should assign registers differently")
	}
}

func TestISAsEncodeDifferently(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPrimAdd)}}
	input := []heap.Word{heap.SmallIntFor(1), heap.SmallIntFor(2)}
	amd, err := NewCogit(StackToRegisterCogit, machine.ISAAmd64Like, om, defects.Switches{}).CompileBytecode(m, input)
	if err != nil {
		t.Fatal(err)
	}
	arm, err := NewCogit(StackToRegisterCogit, machine.ISAArm32Like, om, defects.Switches{}).CompileBytecode(m, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(amd.Code) == len(arm.Code) {
		t.Fatalf("encodings should differ in size: %d vs %d", len(amd.Code), len(arm.Code))
	}
	// The ARM-like backend materializes large immediates separately.
	if arm.Prog.Len() <= amd.Prog.Len() {
		t.Fatalf("fixed-width backend should need more instructions: %d vs %d", arm.Prog.Len(), amd.Prog.Len())
	}
}

func TestPushThisContextNotCompilable(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	m := &bytecode.Method{Name: "t", Code: []byte{byte(bytecode.OpPushThisContext)}}
	_, err := NewCogit(StackToRegisterCogit, machine.ISAAmd64Like, om, defects.Switches{}).CompileBytecode(m, nil)
	if err == nil {
		t.Fatal("pushThisContext must not compile")
	}
}

func TestNativeTemplateAdd(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	prims := primitives.NewTable()
	nc := NewNativeMethodCompiler(machine.ISAAmd64Like, om, defects.ProductionVM())
	cm, err := nc.CompileNativeMethod(prims.Lookup(primitives.PrimIdxAdd))
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := machine.New(om)
	cpu.Reset()
	cpu.Regs[machine.SP]--
	om.Mem.MustWrite(cpu.Regs[machine.SP], machine.SentinelReturn)
	cpu.Regs[machine.ReceiverResultReg] = heap.SmallIntFor(20)
	cpu.Regs[machine.Arg0Reg] = heap.SmallIntFor(22)
	cpu.Install(cm.Prog)
	stop := cpu.Run(1000)
	if stop.Kind != machine.StopReturned || cpu.Regs[machine.ReceiverResultReg] != heap.SmallIntFor(42) {
		t.Fatalf("stop %v result %v", stop, cpu.Regs[machine.ReceiverResultReg])
	}
}

func TestNativeTemplateFailsOnBadReceiver(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	prims := primitives.NewTable()
	nc := NewNativeMethodCompiler(machine.ISAArm32Like, om, defects.ProductionVM())
	cm, err := nc.CompileNativeMethod(prims.Lookup(primitives.PrimIdxAdd))
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := machine.New(om)
	cpu.Reset()
	cpu.Regs[machine.ReceiverResultReg] = om.NilObj
	cpu.Regs[machine.Arg0Reg] = heap.SmallIntFor(1)
	cpu.Install(cm.Prog)
	stop := cpu.Run(1000)
	if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkNativeFallthrough {
		t.Fatalf("stop %v", stop)
	}
}

func TestNativeMissingFunctionalityStub(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	prims := primitives.NewTable()
	var ffi *primitives.Primitive
	for _, p := range prims.All() {
		if p.Category == primitives.CatFFI {
			ffi = p
			break
		}
	}
	nc := NewNativeMethodCompiler(machine.ISAAmd64Like, om, defects.ProductionVM())
	cm, err := nc.CompileNativeMethod(ffi)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := machine.New(om)
	cpu.Install(cm.Prog)
	stop := cpu.Run(10)
	if stop.Kind != machine.StopBreakpoint || stop.BreakID != BrkNotImplemented {
		t.Fatalf("stub should raise not-implemented: %v", stop)
	}
}

func TestAllNativeTemplatesCompile(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	prims := primitives.NewTable()
	for _, sw := range []defects.Switches{defects.ProductionVM(), defects.Pristine()} {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			nc := NewNativeMethodCompiler(isa, om, sw)
			for _, p := range prims.All() {
				if _, err := nc.CompileNativeMethod(p); err != nil {
					t.Errorf("%s on %v (defects=%v): %v", p.Name, isa, sw.FFIMissingInJIT, err)
				}
			}
		}
	}
}

func TestAllBytecodesCompileOrAreCurated(t *testing.T) {
	om := heap.NewBootedObjectMemory()
	for _, v := range allVariants() {
		cogit := NewCogit(v, machine.ISAAmd64Like, om, defects.ProductionVM())
		for _, op := range bytecode.AllOpcodes() {
			d := bytecode.Describe(op)
			if d.Family == bytecode.FamCallPrimitive {
				continue
			}
			m := &bytecode.Method{Name: d.Mnemonic, NumTemps: 12, Code: []byte{byte(op)}}
			for i := 0; i < d.OperandBytes; i++ {
				m.Code = append(m.Code, 0)
			}
			for i := 0; i < 16; i++ {
				m.Literals = append(m.Literals, bytecode.SelectorLiteral("s"))
			}
			// Three input cells cover every instruction's operand needs.
			input := []heap.Word{heap.SmallIntFor(1), heap.SmallIntFor(2), heap.SmallIntFor(3)}
			_, err := cogit.CompileBytecode(m, input)
			if err != nil && d.Family != bytecode.FamPushThisContext {
				t.Errorf("%v: %s does not compile: %v", v, d.Mnemonic, err)
			}
		}
	}
}

func TestTempOffset(t *testing.T) {
	// temp0 is pushed first and therefore deepest: highest FP offset.
	if TempOffset(0, 3) != 4 || TempOffset(2, 3) != 2 {
		t.Fatalf("TempOffset wrong: %d %d", TempOffset(0, 3), TempOffset(2, 3))
	}
}
