package jit

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
)

// This file extends the Cogit from single-instruction test compilation to
// whole-method compilation — the paper's stated future work ("generate
// minimal and relevant byte-code sequences for unit testing the JIT
// compiler"). Control flow between byte-codes is resolved through
// per-target labels; the parse-time simulation stack is flushed at every
// basic-block boundary so all incoming edges agree on the frame state.

// pcLabel names the machine label of a byte-code offset.
func pcLabel(pc int) string { return fmt.Sprintf("bc_%d", pc) }

// jumpTargets collects the byte-code offsets that are jump targets.
func jumpTargets(m *bytecode.Method) (map[int]bool, error) {
	targets := make(map[int]bool)
	for pc := 0; pc < len(m.Code); {
		op, operands, next, ok := m.FetchOp(pc)
		if !ok {
			return nil, fmt.Errorf("%w: undecodable byte-code at %d", ErrNotCompilable, pc)
		}
		var operand byte
		if len(operands) > 0 {
			operand = operands[0]
		}
		if off, _, _, isJump := bytecode.JumpOffset(op, operand); isJump {
			targets[next+off] = true
		}
		pc = next
	}
	return targets, nil
}

// CompileMethod compiles a whole method: every byte-code in sequence with
// intra-method control flow. Message sends compile to trampoline calls
// (observation points for the sequence tester); returns compile to the
// frame epilogue; falling off the end answers the receiver.
func (c *Cogit) CompileMethod(m *bytecode.Method, inputStack []heap.Word) (*CompiledMethod, error) {
	c.reset()
	c.numTemps = m.TempCount()

	targets, err := jumpTargets(m)
	if err != nil {
		return nil, err
	}

	// Frame preamble.
	c.b.Push(ir.FP)
	c.b.MovR(ir.FP, ir.SP)
	for _, w := range inputStack {
		c.pushConst(w)
	}

	for pc := 0; pc < len(m.Code); {
		op, operands, next, ok := m.FetchOp(pc)
		if !ok {
			return nil, fmt.Errorf("%w: undecodable byte-code at %d", ErrNotCompilable, pc)
		}
		if targets[pc] {
			// Basic-block boundary: every incoming edge must see the
			// canonical (flushed) frame state.
			c.flushAll()
			c.b.Label(pcLabel(pc))
		}
		var operand byte
		if len(operands) > 0 {
			operand = operands[0]
		}
		if off, _, _, isJump := bytecode.JumpOffset(op, operand); isJump {
			c.methodJumpLabel = pcLabel(next + off)
		} else {
			c.methodJumpLabel = ""
		}
		c.genBytecode(m, op, operands)
		c.methodJumpLabel = ""
		if c.err != nil {
			return nil, c.err
		}
		pc = next
	}

	// Labels may point one past the last instruction.
	if targets[len(m.Code)] {
		c.flushAll()
		c.b.Label(pcLabel(len(m.Code)))
	}
	// Falling off the end answers the receiver (implicit returnReceiver).
	c.emitEpilogueReturn()
	return c.finish()
}
