package jit

import (
	"time"

	"cogdiff/internal/defects"
	"cogdiff/internal/ir"
	"cogdiff/internal/irverify"
	"cogdiff/internal/machine"
)

// Backend is the shared tail of every byte-code compilation: validate the
// front-end's IR, run the variant's (possibly truncated) pass pipeline,
// report post-pipeline opcodes to the coverage hook, and lower plus encode
// to machine code. It exists so front-ends outside this package (the
// meta-compiled front-end of internal/metacompile) flow through exactly
// the same pipeline, blame truncation, and telemetry as the hand-written
// Cogits.
type Backend struct {
	Variant   Variant
	ISA       machine.ISA
	Defects   defects.Switches
	PassLimit int
	Metrics   *PassMetrics
	OnIR      func(ir.Opc)
	OnStage   func(stage string, fn *ir.Fn)
	// Pool is the physical register pool lowering assigns to virtual
	// registers.
	Pool []machine.Reg
	// NoVerify disables the static IR verifier. Verification is on by
	// default: the front-end's output and every pass prefix are checked
	// for well-formedness and stack balance, and each pass for
	// preservation of its input's abstract stack effect. A violation
	// aborts compilation with an *irverify.Error whose Blame() string
	// ("ir-verify:<rule> after <stage>") attributes the miscompile
	// statically — no instruction of the unit ever executes.
	NoVerify bool
	// RequireDeopt additionally demands a reachable deoptimization stub
	// (a Brk with BrkMetaDeopt) in the front-end's output. Set by the
	// meta-compiled front-end, whose guard chains must always be able to
	// bail out to the interpreter.
	RequireDeopt bool
}

// stageVerifier carries the verifier's pipeline state from stage to
// stage of one compilation: the previous stage's output (the current
// stage's input), its analysis when one was computed, and its content
// hash for the verified-clean cache.
type stageVerifier struct {
	bk             *Backend
	prevFn         *ir.Fn
	prevAn         *irverify.Analysis
	prevLo, prevHi uint64
}

// check runs the static verifier over fn after the named stage.
// Pass-effect violations are ordered first so a pass that breaks stack
// balance is blamed on that rule even when the breakage knocks on into
// whole-function rules. Three tiers keep the steady-state cost near a
// hash: an unchanged function short-circuits entirely, a (input,
// output) pair already proven clean is a cache lookup, and only a novel
// pair pays for full analysis — with the input's analysis reused from
// the previous stage when it was computed there.
func (sv *stageVerifier) check(stage string, fn *ir.Fn) error {
	bk := sv.bk
	var t0 time.Time
	if bk.Metrics != nil {
		t0 = time.Now() //cogdiff:allow-nondeterminism compile timing feeds telemetry histograms only
	}
	done := func(violations int) {
		if bk.Metrics != nil {
			bk.Metrics.observeVerify(time.Since(t0), violations) //cogdiff:allow-nondeterminism compile timing feeds telemetry histograms only
		}
	}
	// A pass that changed nothing preserved every invariant of its
	// already verified input, including its stack effect; the carried
	// hash and analysis stay valid for the next stage.
	if sv.prevFn != nil && sameInstrs(sv.prevFn, fn) {
		sv.prevFn = fn
		done(0)
		return nil
	}
	lo, hi := hashFn(fn)
	key := verifyKey{prevLo: sv.prevLo, prevHi: sv.prevHi, fnLo: lo, fnHi: hi,
		requireDeopt: bk.RequireDeopt}
	if verifiedClean(key) {
		sv.prevFn, sv.prevAn = fn, nil
		sv.prevLo, sv.prevHi = lo, hi
		done(0)
		return nil
	}
	opts := irverify.Options{RequireDeopt: bk.RequireDeopt, DeoptBrkID: BrkMetaDeopt}
	an := opts.Analyze(fn)
	var vs []irverify.Violation
	if sv.prevFn != nil {
		if sv.prevAn == nil {
			// The input rode in on a cache hit; its analysis must be
			// rebuilt once for the pass-effect comparison.
			sv.prevAn = opts.Analyze(sv.prevFn)
		}
		vs = irverify.VerifyPassEffectOn(sv.prevAn, an)
	}
	vs = append(vs, an.Violations()...)
	done(len(vs))
	if len(vs) > 0 {
		return &irverify.Error{Stage: stage, Violations: vs}
	}
	recordVerifiedClean(key)
	sv.prevFn, sv.prevAn = fn, an
	sv.prevLo, sv.prevHi = lo, hi
	return nil
}

// sameInstrs reports whether two functions carry instruction-identical
// bodies, making re-verification redundant.
func sameInstrs(a, b *ir.Fn) bool {
	if len(a.Instrs) != len(b.Instrs) {
		return false
	}
	for i := range a.Instrs {
		if a.Instrs[i] != b.Instrs[i] {
			return false
		}
	}
	return true
}

// Finish compiles the built IR down to a CompiledMethod.
func (bk *Backend) Finish(b *ir.Builder, selectors []Selector, numTemps int) (*CompiledMethod, error) {
	fn, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if bk.OnStage != nil {
		bk.OnStage("front-end", fn)
	}
	var sv *stageVerifier
	if !bk.NoVerify {
		sv = &stageVerifier{bk: bk}
		if err := sv.check("front-end", fn); err != nil {
			return nil, err
		}
	}
	passes := PipelineFor(bk.Variant, bk.Defects)
	limit := bk.PassLimit
	if limit < 0 || limit > len(passes) {
		limit = len(passes)
	}
	for _, p := range passes[:limit] {
		if bk.Metrics != nil {
			t0 := time.Now() //cogdiff:allow-nondeterminism compile timing feeds telemetry histograms only
			fn = p.Run(fn)
			bk.Metrics.observePass(p.Name, time.Since(t0)) //cogdiff:allow-nondeterminism compile timing feeds telemetry histograms only
		} else {
			fn = p.Run(fn)
		}
		if bk.OnStage != nil {
			bk.OnStage(p.Name, fn)
		}
		if sv != nil {
			if err := sv.check("pass:"+p.Name, fn); err != nil {
				return nil, err
			}
		}
	}
	if bk.OnIR != nil {
		for _, ins := range fn.Instrs {
			if ins.Op != ir.OpcLabel {
				bk.OnIR(ins.Op)
			}
		}
	}
	prog, err := machine.Lower(fn, bk.ISA, machine.CodeBase, bk.Pool)
	if err != nil {
		return nil, err
	}
	code, err := machine.Encode(prog, bk.ISA)
	if err != nil {
		return nil, err
	}
	bk.Metrics.unitCompiled()
	return &CompiledMethod{
		Prog:      prog,
		Code:      code,
		ISA:       bk.ISA,
		Selectors: selectors,
		NumTemps:  numTemps,
	}, nil
}
