package jit

import (
	"time"

	"cogdiff/internal/defects"
	"cogdiff/internal/ir"
	"cogdiff/internal/machine"
)

// Backend is the shared tail of every byte-code compilation: validate the
// front-end's IR, run the variant's (possibly truncated) pass pipeline,
// report post-pipeline opcodes to the coverage hook, and lower plus encode
// to machine code. It exists so front-ends outside this package (the
// meta-compiled front-end of internal/metacompile) flow through exactly
// the same pipeline, blame truncation, and telemetry as the hand-written
// Cogits.
type Backend struct {
	Variant   Variant
	ISA       machine.ISA
	Defects   defects.Switches
	PassLimit int
	Metrics   *PassMetrics
	OnIR      func(ir.Opc)
	OnStage   func(stage string, fn *ir.Fn)
	// Pool is the physical register pool lowering assigns to virtual
	// registers.
	Pool []machine.Reg
}

// Finish compiles the built IR down to a CompiledMethod.
func (bk *Backend) Finish(b *ir.Builder, selectors []Selector, numTemps int) (*CompiledMethod, error) {
	fn, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if bk.OnStage != nil {
		bk.OnStage("front-end", fn)
	}
	passes := PipelineFor(bk.Variant, bk.Defects)
	limit := bk.PassLimit
	if limit < 0 || limit > len(passes) {
		limit = len(passes)
	}
	for _, p := range passes[:limit] {
		if bk.Metrics != nil {
			t0 := time.Now()
			fn = p.Run(fn)
			bk.Metrics.observePass(p.Name, time.Since(t0))
		} else {
			fn = p.Run(fn)
		}
		if bk.OnStage != nil {
			bk.OnStage(p.Name, fn)
		}
	}
	if bk.OnIR != nil {
		for _, ins := range fn.Instrs {
			if ins.Op != ir.OpcLabel {
				bk.OnIR(ins.Op)
			}
		}
	}
	prog, err := machine.Lower(fn, bk.ISA, machine.CodeBase, bk.Pool)
	if err != nil {
		return nil, err
	}
	code, err := machine.Encode(prog, bk.ISA)
	if err != nil {
		return nil, err
	}
	bk.Metrics.unitCompiled()
	return &CompiledMethod{
		Prog:      prog,
		Code:      code,
		ISA:       bk.ISA,
		Selectors: selectors,
		NumTemps:  numTemps,
	}, nil
}
