package jit

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/ir"
	"cogdiff/internal/machine"
)

// Cogit is a byte-code JIT compiler front-end plus back-end pair. One
// Cogit instance compiles methods for one object memory (compile-time
// constants such as class references and boxed literals are resolved
// against it, the way Cogit bakes oops into machine code).
type Cogit struct {
	Variant Variant
	ISA     machine.ISA
	OM      *heap.ObjectMemory
	Defects defects.Switches

	// OnIR, when non-nil, observes the opcode of every instruction in the
	// post-pipeline IR (labels excluded) — the fuzzer's IR-opcode coverage
	// signal. Set it before compiling.
	OnIR func(ir.Opc)

	// OnStage, when non-nil, receives the IR after the front-end and
	// after each optimization pass — the CLI's ir-dump hook.
	OnStage func(stage string, fn *ir.Fn)

	// PassLimit truncates the optimization pipeline to its first
	// PassLimit passes; negative runs the full pipeline. The blame
	// machinery recompiles with each prefix to attribute a difference to
	// the first guilty pass.
	PassLimit int

	// Metrics, when non-nil, times every optimization pass and counts
	// compiled units through pre-resolved telemetry handles.
	Metrics *PassMetrics

	// NoVerify disables the static IR verifier the Backend runs after
	// the front-end and every pass prefix. Verification is on by default.
	NoVerify bool

	// per-compilation state
	b           *ir.Builder
	ss          []ssEntry
	spilled     int
	alloc       regAllocator
	selectors   []Selector
	selectorIdx map[string]int64
	labelSeq    int
	numTemps    int
	usesJump    bool
	// methodJumpLabel, when non-empty, redirects jump byte-codes to a
	// per-pc label (whole-method compilation) instead of the single
	// instruction test schema's "jumpTaken" breakpoint.
	methodJumpLabel string
	err             error
}

// NewCogit builds a compiler of the given variant and ISA over om.
func NewCogit(v Variant, isa machine.ISA, om *heap.ObjectMemory, sw defects.Switches) *Cogit {
	c := &Cogit{Variant: v, ISA: isa, OM: om, Defects: sw, PassLimit: -1}
	return c
}

func (c *Cogit) reset() {
	c.b = ir.NewBuilder()
	c.ss = c.ss[:0]
	c.spilled = 0
	c.selectors = nil
	c.selectorIdx = make(map[string]int64)
	c.labelSeq = 0
	c.usesJump = false
	c.methodJumpLabel = ""
	c.err = nil
	if c.Variant == RegisterAllocatingCogit {
		c.alloc = newLinearAllocator()
	} else {
		c.alloc = newFixedAllocator()
	}
}

func (c *Cogit) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *Cogit) newLabel(prefix string) string {
	c.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, c.labelSeq)
}

// addSelector interns a send site and returns its identifier. The map
// makes interning O(1) per site; the slice keeps identifiers stable and
// dense for the trampoline's SelectorAt lookup.
func (c *Cogit) addSelector(name string, numArgs int) int64 {
	key := fmt.Sprintf("%s/%d", name, numArgs)
	if id, ok := c.selectorIdx[key]; ok {
		return id
	}
	id := int64(len(c.selectors))
	c.selectors = append(c.selectors, Selector{Name: name, NumArgs: numArgs})
	c.selectorIdx[key] = id
	return id
}

// ---- simulation stack ----

// pushConst records a compile-time-known value on the simulation stack.
// The simple Cogit materializes it immediately (§4.1).
func (c *Cogit) pushConst(w heap.Word) {
	if c.Variant == SimpleStackBasedCogit {
		c.moviBig(ir.ScratchReg, int64(w))
		c.b.Push(ir.ScratchReg)
		c.ss = append(c.ss, ssEntry{kind: ssSpill})
		c.spilled = len(c.ss)
		return
	}
	c.ss = append(c.ss, ssEntry{kind: ssConst, w: w})
}

// pushReg records a register-resident value.
func (c *Cogit) pushReg(r ir.Reg) {
	if c.Variant == SimpleStackBasedCogit {
		c.b.Push(r)
		c.freeReg(r)
		c.ss = append(c.ss, ssEntry{kind: ssSpill})
		c.spilled = len(c.ss)
		return
	}
	c.ss = append(c.ss, ssEntry{kind: ssReg, reg: r})
}

// flushAll spills every simulation-stack entry to the machine stack
// (Cogit's ssFlushTo), establishing the canonical frame state before
// branches, sends and instruction ends.
func (c *Cogit) flushAll() {
	for i := c.spilled; i < len(c.ss); i++ {
		e := c.ss[i]
		switch e.kind {
		case ssConst:
			c.moviBig(ir.ScratchReg, int64(e.w))
			c.b.Push(ir.ScratchReg)
		case ssReg:
			c.b.Push(e.reg)
			c.freeReg(e.reg)
		}
		c.ss[i] = ssEntry{kind: ssSpill}
	}
	c.spilled = len(c.ss)
}

// popToReg pops the simulation-stack top into dst, emitting the minimal
// code for where the value currently lives.
func (c *Cogit) popToReg(dst ir.Reg) {
	if len(c.ss) == 0 {
		c.fail("jit: simulation stack underflow")
		return
	}
	e := c.ss[len(c.ss)-1]
	c.ss = c.ss[:len(c.ss)-1]
	switch e.kind {
	case ssConst:
		c.moviBig(dst, int64(e.w))
	case ssReg:
		if e.reg != dst {
			c.b.MovR(dst, e.reg)
		}
		c.freeReg(e.reg)
	case ssSpill:
		c.b.Pop(dst)
		c.spilled--
	}
}

// dropTop discards the simulation-stack top.
func (c *Cogit) dropTop() {
	if len(c.ss) == 0 {
		c.fail("jit: simulation stack underflow")
		return
	}
	e := c.ss[len(c.ss)-1]
	c.ss = c.ss[:len(c.ss)-1]
	switch e.kind {
	case ssReg:
		c.freeReg(e.reg)
	case ssSpill:
		c.b.BinI(ir.OpcAddI, ir.SP, ir.SP, 1)
		c.spilled--
	}
}

// allocReg obtains a scratch register, spilling the simulation stack when
// the pool is exhausted.
func (c *Cogit) allocReg() ir.Reg {
	if r, ok := c.alloc.alloc(); ok {
		return r
	}
	c.flushAll()
	if r, ok := c.alloc.alloc(); ok {
		return r
	}
	c.fail("jit: out of registers")
	return ir.ScratchReg
}

func (c *Cogit) freeReg(r ir.Reg) { c.alloc.free(r) }

// ---- immediate helpers ----

// moviBig loads an immediate. ISA-specific splitting is no longer a
// front-end concern: lowering handles encoding limits.
func (c *Cogit) moviBig(rd ir.Reg, imm int64) {
	c.b.MovI(rd, imm)
}

// cmpImm compares a register against an immediate. The front-end emits a
// plain compare; the fixed-width back-end materializes out-of-range
// immediates through the scratch register during lowering.
func (c *Cogit) cmpImm(rs ir.Reg, imm int64) {
	c.b.CmpI(rs, imm)
}

// ---- common code shapes ----

// checkSmallIntJumpIfNot tests the tag bit of r and branches to label when
// r is not a tagged integer (Listing 2's checkSmallInteger + jumpzero).
func (c *Cogit) checkSmallIntJumpIfNot(r ir.Reg, label string) {
	c.b.BinI(ir.OpcAndI, ir.ScratchReg, r, 1)
	c.b.CmpI(ir.ScratchReg, 1)
	c.b.Jump(ir.OpcJne, label)
}

// untag converts a tagged integer in place.
func (c *Cogit) untag(r ir.Reg) { c.b.BinI(ir.OpcSarI, r, r, 1) }

// tag boxes an in-range integer in place.
func (c *Cogit) tag(r ir.Reg) {
	c.b.BinI(ir.OpcShlI, r, r, 1)
	c.b.BinI(ir.OpcOrI, r, r, 1)
}

// rangeCheckJumpIfOut branches to label unless r fits the tagged range
// (the jumpIfNotOverflow of Listing 2).
func (c *Cogit) rangeCheckJumpIfOut(r ir.Reg, label string) {
	c.cmpImm(r, heap.MaxSmallInt)
	c.b.Jump(ir.OpcJgt, label)
	c.cmpImm(r, heap.MinSmallInt)
	c.b.Jump(ir.OpcJlt, label)
}

// loadHeader fetches the object header of obj into dst.
func (c *Cogit) loadHeader(dst, obj ir.Reg) {
	c.b.Load(dst, obj, 0)
}

// emitSend flushes the frame state and calls the send trampoline with the
// selector identifier in ClassSelectorReg (mono/poly/mega-morphic inline
// caches collapse to this single trampoline in the simulated runtime).
func (c *Cogit) emitSend(selector string, numArgs int) {
	c.flushAll()
	id := c.addSelector(selector, numArgs)
	c.b.MovI(ir.ClassSelectorReg, id)
	c.b.Call(machine.SendTrampoline)
}

// emitEpilogueReturn tears down the frame and returns to the caller with
// the result in ReceiverResultReg.
func (c *Cogit) emitEpilogueReturn() {
	c.b.MovR(ir.SP, ir.FP)
	c.b.Pop(ir.FP)
	c.b.Ret()
}

// ---- compilation entry points ----

// CompileBytecode compiles the single-instruction test method following
// the schema of Listing 3: a frame preamble, one literal push per input
// operand-stack value (bottom first), the instruction itself, and exit
// breakpoints. inputStack holds the concrete input values the differential
// tester materialized from the path's input constraints.
func (c *Cogit) CompileBytecode(m *bytecode.Method, inputStack []heap.Word) (*CompiledMethod, error) {
	c.reset()
	c.numTemps = m.TempCount()

	// Frame preamble.
	c.b.Push(ir.FP)
	c.b.MovR(ir.FP, ir.SP)

	// Push literals to guarantee the shape of the operand stack.
	for _, w := range inputStack {
		c.pushConst(w)
	}

	op, operands, _, ok := m.FetchOp(0)
	if !ok {
		return nil, fmt.Errorf("%w: undecodable byte-code", ErrNotCompilable)
	}
	c.genBytecode(m, op, operands)
	if c.err != nil {
		return nil, c.err
	}

	// Exit tails: the fall-through end, plus the jump landing site when
	// the instruction branches.
	c.flushAll()
	c.b.Brk(BrkEndFall)
	if c.usesJump {
		c.b.Label("jumpTaken")
		c.b.Brk(BrkJumpTaken)
	}
	return c.finish()
}

// pool returns the physical registers lowering assigns to the variant's
// virtual registers — the same registers (in the same order) each
// variant's allocator used to hand out directly.
func (c *Cogit) pool() []machine.Reg {
	if c.Variant == RegisterAllocatingCogit {
		return []machine.Reg{machine.R1, machine.R2, machine.R3, machine.TempReg, machine.ExtraReg}
	}
	return []machine.Reg{machine.TempReg, machine.ExtraReg, machine.R1}
}

// finish runs the three-layer tail of compilation through the shared
// Backend: validate the front-end's IR, run the (possibly truncated) pass
// pipeline, report the post-pipeline opcodes to the coverage hook, and
// lower to machine code.
func (c *Cogit) finish() (*CompiledMethod, error) {
	bk := &Backend{
		Variant:   c.Variant,
		ISA:       c.ISA,
		Defects:   c.Defects,
		PassLimit: c.PassLimit,
		Metrics:   c.Metrics,
		OnIR:      c.OnIR,
		OnStage:   c.OnStage,
		Pool:      c.pool(),
		NoVerify:  c.NoVerify,
	}
	return bk.Finish(c.b, c.selectors, c.numTemps)
}
