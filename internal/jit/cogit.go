package jit

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/machine"
)

// Cogit is a byte-code JIT compiler front-end plus back-end pair. One
// Cogit instance compiles methods for one object memory (compile-time
// constants such as class references and boxed literals are resolved
// against it, the way Cogit bakes oops into machine code).
type Cogit struct {
	Variant Variant
	ISA     machine.ISA
	OM      *heap.ObjectMemory
	Defects defects.Switches

	// OnEmit, when non-nil, observes every machine instruction the
	// compiler emits — the fuzzer's IR-opcode coverage signal. Set it
	// before compiling; it is rewired into each compilation's assembler.
	OnEmit func(machine.Opc)

	// per-compilation state
	asm       *machine.Assembler
	ss        []ssEntry
	spilled   int
	alloc     regAllocator
	selectors []Selector
	labelSeq  int
	numTemps  int
	usesJump  bool
	// methodJumpLabel, when non-empty, redirects jump byte-codes to a
	// per-pc label (whole-method compilation) instead of the single
	// instruction test schema's "jumpTaken" breakpoint.
	methodJumpLabel string
	err             error
}

// NewCogit builds a compiler of the given variant and ISA over om.
func NewCogit(v Variant, isa machine.ISA, om *heap.ObjectMemory, sw defects.Switches) *Cogit {
	c := &Cogit{Variant: v, ISA: isa, OM: om, Defects: sw}
	return c
}

func (c *Cogit) reset() {
	c.asm = machine.NewAssembler(machine.CodeBase)
	c.asm.Observer = c.OnEmit
	c.ss = c.ss[:0]
	c.spilled = 0
	c.selectors = nil
	c.labelSeq = 0
	c.usesJump = false
	c.methodJumpLabel = ""
	c.err = nil
	if c.Variant == RegisterAllocatingCogit {
		c.alloc = newLinearAllocator()
	} else {
		c.alloc = newFixedAllocator()
	}
}

func (c *Cogit) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *Cogit) newLabel(prefix string) string {
	c.labelSeq++
	return fmt.Sprintf("%s_%d", prefix, c.labelSeq)
}

// addSelector interns a send site and returns its identifier.
func (c *Cogit) addSelector(name string, numArgs int) int64 {
	for i, s := range c.selectors {
		if s.Name == name && s.NumArgs == numArgs {
			return int64(i)
		}
	}
	c.selectors = append(c.selectors, Selector{Name: name, NumArgs: numArgs})
	return int64(len(c.selectors) - 1)
}

// ---- simulation stack ----

// pushConst records a compile-time-known value on the simulation stack.
// The simple Cogit materializes it immediately (§4.1).
func (c *Cogit) pushConst(w heap.Word) {
	if c.Variant == SimpleStackBasedCogit {
		c.moviBig(machine.ScratchReg, int64(w))
		c.asm.Push(machine.ScratchReg)
		c.ss = append(c.ss, ssEntry{kind: ssSpill})
		c.spilled = len(c.ss)
		return
	}
	c.ss = append(c.ss, ssEntry{kind: ssConst, w: w})
}

// pushReg records a register-resident value.
func (c *Cogit) pushReg(r machine.Reg) {
	if c.Variant == SimpleStackBasedCogit {
		c.asm.Push(r)
		c.freeReg(r)
		c.ss = append(c.ss, ssEntry{kind: ssSpill})
		c.spilled = len(c.ss)
		return
	}
	c.ss = append(c.ss, ssEntry{kind: ssReg, reg: r})
}

// flushAll spills every simulation-stack entry to the machine stack
// (Cogit's ssFlushTo), establishing the canonical frame state before
// branches, sends and instruction ends.
func (c *Cogit) flushAll() {
	for i := c.spilled; i < len(c.ss); i++ {
		e := c.ss[i]
		switch e.kind {
		case ssConst:
			c.moviBig(machine.ScratchReg, int64(e.w))
			c.asm.Push(machine.ScratchReg)
		case ssReg:
			c.asm.Push(e.reg)
			c.freeReg(e.reg)
		}
		c.ss[i] = ssEntry{kind: ssSpill}
	}
	c.spilled = len(c.ss)
}

// popToReg pops the simulation-stack top into dst, emitting the minimal
// code for where the value currently lives.
func (c *Cogit) popToReg(dst machine.Reg) {
	if len(c.ss) == 0 {
		c.fail("jit: simulation stack underflow")
		return
	}
	e := c.ss[len(c.ss)-1]
	c.ss = c.ss[:len(c.ss)-1]
	switch e.kind {
	case ssConst:
		c.moviBig(dst, int64(e.w))
	case ssReg:
		if e.reg != dst {
			c.asm.MovR(dst, e.reg)
		}
		c.freeReg(e.reg)
	case ssSpill:
		c.asm.Pop(dst)
		c.spilled--
	}
}

// dropTop discards the simulation-stack top.
func (c *Cogit) dropTop() {
	if len(c.ss) == 0 {
		c.fail("jit: simulation stack underflow")
		return
	}
	e := c.ss[len(c.ss)-1]
	c.ss = c.ss[:len(c.ss)-1]
	switch e.kind {
	case ssReg:
		c.freeReg(e.reg)
	case ssSpill:
		c.asm.BinI(machine.OpcAddI, machine.SP, machine.SP, 1)
		c.spilled--
	}
}

// allocReg obtains a scratch register, spilling the simulation stack when
// the pool is exhausted.
func (c *Cogit) allocReg() machine.Reg {
	if r, ok := c.alloc.alloc(); ok {
		return r
	}
	c.flushAll()
	if r, ok := c.alloc.alloc(); ok {
		return r
	}
	c.fail("jit: out of registers")
	return machine.ScratchReg
}

func (c *Cogit) freeReg(r machine.Reg) { c.alloc.free(r) }

// ---- ISA-sensitive lowering helpers ----

// armImmLimit is the largest immediate the ARM32-like back-end folds into
// an instruction; larger constants are loaded into the scratch register.
const armImmLimit = 1 << 12

// moviBig loads an immediate, splitting on the fixed-width ISA when the
// value exceeds its 32-bit field (tagged values always fit).
func (c *Cogit) moviBig(rd machine.Reg, imm int64) {
	c.asm.MovI(rd, imm)
}

// cmpImm compares a register against an immediate. The x86-style back-end
// folds any immediate; the ARM32-style back-end materializes large ones.
func (c *Cogit) cmpImm(rs machine.Reg, imm int64) {
	if c.ISA == machine.ISAArm32Like && (imm >= armImmLimit || imm <= -armImmLimit) {
		c.asm.MovI(machine.ScratchReg, imm)
		c.asm.Cmp(rs, machine.ScratchReg)
		return
	}
	c.asm.CmpI(rs, imm)
}

// ---- common code shapes ----

// checkSmallIntJumpIfNot tests the tag bit of r and branches to label when
// r is not a tagged integer (Listing 2's checkSmallInteger + jumpzero).
func (c *Cogit) checkSmallIntJumpIfNot(r machine.Reg, label string) {
	c.asm.BinI(machine.OpcAndI, machine.ScratchReg, r, 1)
	c.asm.CmpI(machine.ScratchReg, 1)
	c.asm.Jump(machine.OpcJne, label)
}

// untag converts a tagged integer in place.
func (c *Cogit) untag(r machine.Reg) { c.asm.BinI(machine.OpcSarI, r, r, 1) }

// tag boxes an in-range integer in place.
func (c *Cogit) tag(r machine.Reg) {
	c.asm.BinI(machine.OpcShlI, r, r, 1)
	c.asm.BinI(machine.OpcOrI, r, r, 1)
}

// rangeCheckJumpIfOut branches to label unless r fits the tagged range
// (the jumpIfNotOverflow of Listing 2).
func (c *Cogit) rangeCheckJumpIfOut(r machine.Reg, label string) {
	c.cmpImm(r, heap.MaxSmallInt)
	c.asm.Jump(machine.OpcJgt, label)
	c.cmpImm(r, heap.MinSmallInt)
	c.asm.Jump(machine.OpcJlt, label)
}

// loadHeader fetches the object header of obj into dst.
func (c *Cogit) loadHeader(dst, obj machine.Reg) {
	c.asm.Load(dst, obj, 0)
}

// emitSend flushes the frame state and calls the send trampoline with the
// selector identifier in ClassSelectorReg (mono/poly/mega-morphic inline
// caches collapse to this single trampoline in the simulated runtime).
func (c *Cogit) emitSend(selector string, numArgs int) {
	c.flushAll()
	id := c.addSelector(selector, numArgs)
	c.asm.MovI(machine.ClassSelectorReg, id)
	c.asm.Call(machine.SendTrampoline)
}

// emitEpilogueReturn tears down the frame and returns to the caller with
// the result in ReceiverResultReg.
func (c *Cogit) emitEpilogueReturn() {
	c.asm.MovR(machine.SP, machine.FP)
	c.asm.Pop(machine.FP)
	c.asm.Ret()
}

// ---- compilation entry points ----

// CompileBytecode compiles the single-instruction test method following
// the schema of Listing 3: a frame preamble, one literal push per input
// operand-stack value (bottom first), the instruction itself, and exit
// breakpoints. inputStack holds the concrete input values the differential
// tester materialized from the path's input constraints.
func (c *Cogit) CompileBytecode(m *bytecode.Method, inputStack []heap.Word) (*CompiledMethod, error) {
	c.reset()
	c.numTemps = m.TempCount()

	// Frame preamble.
	c.asm.Push(machine.FP)
	c.asm.MovR(machine.FP, machine.SP)

	// Push literals to guarantee the shape of the operand stack.
	for _, w := range inputStack {
		c.pushConst(w)
	}

	op, operands, _, ok := m.FetchOp(0)
	if !ok {
		return nil, fmt.Errorf("%w: undecodable byte-code", ErrNotCompilable)
	}
	c.genBytecode(m, op, operands)
	if c.err != nil {
		return nil, c.err
	}

	// Exit tails: the fall-through end, plus the jump landing site when
	// the instruction branches.
	c.flushAll()
	c.asm.Brk(BrkEndFall)
	if c.usesJump {
		c.asm.Label("jumpTaken")
		c.asm.Brk(BrkJumpTaken)
	}
	return c.finish()
}

func (c *Cogit) finish() (*CompiledMethod, error) {
	prog, err := c.asm.Finish()
	if err != nil {
		return nil, err
	}
	code, err := machine.Encode(prog, c.ISA)
	if err != nil {
		return nil, err
	}
	return &CompiledMethod{
		Prog:      prog,
		Code:      code,
		ISA:       c.ISA,
		Selectors: c.selectors,
		NumTemps:  c.numTemps,
	}, nil
}
