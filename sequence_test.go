package cogdiff

import (
	"strings"
	"testing"
)

func TestExploreJSONRoundTrip(t *testing.T) {
	data, err := ExploreJSON("primitiveAdd")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "isSmallInteger") {
		t.Fatal("cached exploration missing constraints")
	}
	res, err := TestInstructionCached(data, CompilerNativeMethods)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instruction != "primitiveAdd" || res.Curated == 0 {
		t.Fatalf("cached difftest wrong: %+v", res)
	}
	if len(res.Differences) != 0 {
		t.Fatalf("primitiveAdd must agree: %v", res.Differences)
	}

	// The cached flow must find the same differences as the fresh flow.
	cached, err := ExploreJSON("primitiveFloatAdd")
	if err != nil {
		t.Fatal(err)
	}
	cres, err := TestInstructionCached(cached, CompilerNativeMethods)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := TestInstruction("primitiveFloatAdd", CompilerNativeMethods)
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Differences) != len(fres.Differences) {
		t.Fatalf("cached found %d differences, fresh found %d", len(cres.Differences), len(fres.Differences))
	}

	if _, err := TestInstructionCached([]byte("{"), CompilerSimple); err == nil {
		t.Fatal("garbage cache must error")
	}
}

func TestProgramSequenceAPI(t *testing.T) {
	// ^ (self max: arg) using explicit control flow
	p := NewProgram("max:", 1).
		PushReceiver().PushArg(0).LessThan().
		JumpIfTrue("other").
		PushReceiver().ReturnTop().
		Label("other").
		PushArg(0).ReturnTop()
	results, err := TestProgram(p, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 { // 3 compilers x 2 ISAs
		t.Fatalf("expected 6 results, got %d", len(results))
	}
	for _, r := range results {
		if r.Differs {
			t.Errorf("%s/%s differs: %s", r.Compiler, r.ISA, r.Detail)
		}
		if r.Outcome != "return int:9" {
			t.Errorf("%s/%s outcome %q", r.Compiler, r.ISA, r.Outcome)
		}
	}
}

func TestProgramSendBoundary(t *testing.T) {
	p := NewProgram("caller", 0).PushReceiver().PushInt(4).Send("quux:", 1).ReturnTop()
	results, err := TestProgram(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Differs {
			t.Errorf("%s/%s differs: %s", r.Compiler, r.ISA, r.Detail)
		}
		if !strings.Contains(r.Outcome, "send #quux:/1") {
			t.Errorf("outcome %q", r.Outcome)
		}
	}
}

func TestProgramBuildError(t *testing.T) {
	p := NewProgram("bad", 0).JumpIfTrue("nowhere")
	if _, err := TestProgram(p, 1); err == nil {
		t.Fatal("undefined label must surface as an error")
	}
}
