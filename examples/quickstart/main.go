// Quickstart: concolically explore one byte-code instruction and
// differentially test it against a JIT compiler.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cogdiff"
)

func main() {
	// Step 1 (paper §2.3): concolic exploration of the interpreter
	// discovers every execution path of the instruction, together with
	// the input constraints and concrete witnesses that reach them.
	ex, err := cogdiff.Explore("primAdd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concolic exploration of %s: %d paths in %s\n\n", ex.Instruction, len(ex.Paths), ex.Duration)
	for i, p := range ex.Paths {
		fmt.Printf("  path %-2d exit=%-18s witness: %s\n", i+1, p.Exit, p.Witness)
	}

	// Step 2-4 (paper §2.4): compile the instruction per discovered path,
	// execute the machine code on the simulated CPU, and compare the
	// observable behaviour against the interpreter.
	fmt.Println("\ndifferential testing against the stack-to-register compiler:")
	res, err := cogdiff.TestInstruction("primAdd", cogdiff.CompilerStackToRegister)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d paths, %d curated, %d differences\n", res.Paths, res.Curated, len(res.Differences))
	for _, d := range res.Differences {
		fmt.Printf("  DIFFERENCE [%s] %s: %s\n", d.ISA, d.Family, d.Detail)
	}

	// The float fast path is inlined by the interpreter but compiled as a
	// message send — the "optimisation difference" family of §5.3.
	fmt.Println("\n(the reported difference is the interpreter's inlined float fast path)")
}
