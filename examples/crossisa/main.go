// Crossisa demonstrates the cross-ISA testing dimension (§5.1): the same
// byte-code instruction is compiled by the same front-end for the two
// simulated target ISAs, producing genuinely different machine code —
// different instruction sequences, different encodings — that must show
// identical observable behaviour.
//
//	go run ./examples/crossisa
package main

import (
	"fmt"
	"log"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/jit"
	"cogdiff/internal/machine"
)

func main() {
	om := heap.NewBootedObjectMemory()
	method := &bytecode.Method{Name: "primAdd", Code: []byte{byte(bytecode.OpPrimAdd)}}
	input := []heap.Word{heap.SmallIntFor(1000000), heap.SmallIntFor(2345)}

	for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
		cogit := jit.NewCogit(jit.StackToRegisterCogit, isa, om, defects.ProductionVM())
		cm, err := cogit.CompileBytecode(method, input)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s: %d instructions, %d bytes of machine code ====\n",
			isa, cm.Prog.Len(), len(cm.Code))
		fmt.Print(cm.Prog.Disassemble())

		// Execute on the simulated CPU.
		cpu, err := machine.New(om)
		if err != nil {
			log.Fatal(err)
		}
		cpu.Reset()
		cpu.Regs[machine.SP]--
		om.Mem.MustWrite(cpu.Regs[machine.SP], machine.SentinelReturn)
		cpu.Regs[machine.ReceiverResultReg] = om.NilObj
		cpu.Install(cm.Prog)
		stop := cpu.Run(1000)

		top, err := cpu.Mem.Read(cpu.Regs[machine.SP])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stopped at %s after %d steps; top of operand stack = %s\n\n",
			stop, stop.Steps, om.Describe(top))
	}

	fmt.Println("both ISAs compute 1000000 + 2345 = 1002345 through different machine code;")
	fmt.Println("the ARM32-like back-end materializes large immediates in a scratch register")
	fmt.Println("while the x86-like back-end folds them into compare instructions.")
}
