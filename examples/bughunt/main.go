// Bughunt runs the paper's full evaluation (§5): concolic exploration of
// every VM instruction, differential testing of all four compilers on
// both simulated ISAs, and classification of every discovered difference
// into the six defect families. It then compares the rediscovered causes
// against the seeded ground-truth catalog.
//
//	go run ./examples/bughunt
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"cogdiff"
)

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "campaign worker goroutines (1 = serial)")
	flag.Parse()

	fmt.Printf("running the full differential-testing campaign (4 compilers x 2 ISAs, %d workers)...\n", *workers)
	sum, err := cogdiff.RunCampaign(cogdiff.CampaignOptions{
		Workers: *workers,
		OnInstructionDone: func(compiler, instruction string, done, total int) {
			// Liveness on long campaigns: overwrite one status line.
			fmt.Fprintf(os.Stderr, "\r%4d/%d %-34s %-28s", done, total, compiler, instruction)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bughunt:", err)
		os.Exit(1)
	}
	fmt.Printf("done in %s\n\n", sum.Duration)

	fmt.Println(sum.Table2)
	fmt.Println(sum.Table3)

	fmt.Println("Rediscovered causes vs seeded ground truth:")
	seeded := cogdiff.SeededCauseInventory()
	for _, fam := range cogdiff.SortedFamilies(seeded) {
		fmt.Printf("  %-35s seeded=%-3d rediscovered=%d\n", fam, seeded[fam], sum.CausesByFamily[fam])
	}

	fmt.Println("\nSanity baseline: the pristine (defect-free) VM")
	clean, err := cogdiff.RunCampaign(cogdiff.CampaignOptions{Pristine: true, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bughunt:", err)
		os.Exit(1)
	}
	fmt.Printf("pristine differences: %d (all from the byte-code tiers' missing\n", clean.TotalDifferences)
	fmt.Println("float-inlining, the inherent optimisation differences)")
	for _, fam := range cogdiff.SortedFamilies(clean.CausesByFamily) {
		fmt.Printf("  %-35s %d\n", fam, clean.CausesByFamily[fam])
	}
}
