// Fuzzing runs a coverage-guided differential fuzzing campaign over
// byte-code sequences (the paper's closing future work): random
// well-formed methods are mutated under a coverage signal spanning
// interpreter byte-codes, JIT IR emission and machine basic blocks; every
// difference between the interpreter and the byte-code compilers is
// classified, deduplicated by cause and shrunk to a 1-minimal sequence.
//
//	go run ./examples/fuzzing
//	go run ./examples/fuzzing -budget 10000 -emit-tests fuzz_regress_test.go
package main

import (
	"flag"
	"fmt"
	"os"

	"cogdiff"
)

func main() {
	seed := flag.Int64("seed", 2022, "engine RNG seed (same seed + budget = same report)")
	budget := flag.Int("budget", 2000, "execution budget")
	workers := flag.Int("workers", 0, "worker goroutines per batch (0 = GOMAXPROCS)")
	emitTests := flag.String("emit-tests", "", "write reduced differences as a Go test file")
	flag.Parse()

	sum, err := cogdiff.Fuzz(cogdiff.FuzzOptions{
		Seed:      *seed,
		Budget:    *budget,
		Workers:   *workers,
		Minimize:  true,
		EmitTests: *emitTests,
		OnProgress: func(done, total, corpusSize, causes int) {
			fmt.Fprintf(os.Stderr, "\r%6d/%d executions, corpus %d, causes %d", done, total, corpusSize, causes)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fuzzing failed:", err)
		os.Exit(1)
	}

	fmt.Print(sum.Report)
	if *emitTests != "" {
		fmt.Printf("\nreduced sequences written as unit tests to %s\n", *emitTests)
	}
}
