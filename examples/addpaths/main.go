// Addpaths reproduces the paper's Table 1 and Figure 2: the concolic
// execution paths of the integer-addition byte-code with their concrete
// witnesses, recorded constraint paths, and abstract input/output frames.
//
//	go run ./examples/addpaths
package main

import (
	"fmt"
	"log"

	"cogdiff"
)

func main() {
	out, err := cogdiff.ExploreReport("primAdd")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Println("\nFor comparison, a native method with many more paths (Fig. 5):")
	ex, err := cogdiff.Explore("primitiveBitShift")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d paths, explored in %s\n", ex.Instruction, len(ex.Paths), ex.Duration)
	for i, p := range ex.Paths {
		fmt.Printf("  path %-2d exit=%-16s %s\n", i+1, p.Exit, p.Constraints)
	}
}
