// Sequences demonstrates the extension the paper lists as future work:
// differential testing of whole byte-code *sequences*. A synthesized
// method runs both on the interpreter (through the method-dictionary
// runtime) and as whole-method machine code, and the behaviours at the
// first boundary — method return or message send — are compared.
//
//	go run ./examples/sequences
package main

import (
	"fmt"
	"log"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/core"
	"cogdiff/internal/defects"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

func main() {
	// A small library of methods, written in byte-code.
	maxM := bytecode.NewBuilder("max:", 1).
		PushReceiver().PushTemp(0).Op(bytecode.OpPrimGreaterThan).
		JumpIfTrue("self").
		PushTemp(0).ReturnTop().
		Label("self").
		PushReceiver().ReturnTop().
		MustMethod()

	polyM := bytecode.NewBuilder("poly", 0). // ^(self + 3) * (self - 1)
							PushReceiver().PushLiteral(bytecode.IntLiteral(3)).Add().
							PushReceiver().PushInt(1).Subtract().
							Multiply().ReturnTop().
							MustMethod()

	fibM := bytecode.NewBuilder("fib", 0). // recursive fibonacci
						PushReceiver().PushInt(2).LessThan().
						JumpIfFalse("rec").
						PushReceiver().ReturnTop().
						Label("rec").
						PushReceiver().PushInt(1).Subtract().Send("fib", 0).
						PushReceiver().PushInt(2).Subtract().Send("fib", 0).
						Add().ReturnTop().
						MustMethod()

	// First: run fib end-to-end on the interpreter runtime (method
	// dictionaries + nested activations).
	om := heap.NewBootedObjectMemory()
	prims := primitives.NewTable()
	rt := interp.NewRuntime(om, prims)
	rt.Install(heap.ClassIndexSmallInteger, "fib", fibM)
	v, err := rt.SendInt(20, "fib")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interpreter runtime: 20 fib = %s\n\n", om.Describe(v.W))

	// Second: differential sequence testing across the three byte-code
	// compilers and both ISAs.
	tester := core.NewTester(prims, defects.ProductionVM())
	cases := []struct {
		m  *bytecode.Method
		in core.SequenceInput
	}{
		{maxM, core.SequenceInput{Receiver: core.Int64(3), Args: []core.SeqValue{core.Int64(5)}}},
		{maxM, core.SequenceInput{Receiver: core.Int64(9), Args: []core.SeqValue{core.Int64(-2)}}},
		{polyM, core.SequenceInput{Receiver: core.Int64(7)}},
		{fibM, core.SequenceInput{Receiver: core.Int64(10)}}, // compared at the first #fib send
	}
	kinds := []core.CompilerKind{core.SimpleBytecodeCompiler, core.StackToRegisterCompiler, core.RegisterAllocatingCompiler}
	for _, cse := range cases {
		for _, kind := range kinds {
			for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
				verdict, err := tester.TestSequence(cse.m, cse.in, kind, isa)
				if err != nil {
					log.Fatal(err)
				}
				status := "AGREE "
				if verdict.Differs {
					status = "DIFFER"
				}
				fmt.Printf("%s %-12s %-35s %-12s -> %s\n", status, cse.m.Name, kind, isa, verdict.Interp)
			}
		}
	}
}
