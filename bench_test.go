package cogdiff

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§5). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute times differ from the paper's 2015 MacBook + Pharo AST
// meta-interpreter; EXPERIMENTS.md records the measured-vs-paper values
// and the preserved shapes.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/core"
	"cogdiff/internal/excache"
	"cogdiff/internal/fuzzer"
	"cogdiff/internal/heap"
	"cogdiff/internal/interp"
	"cogdiff/internal/primitives"
	"cogdiff/internal/report"
	"cogdiff/internal/telemetry"
)

// setupCampaign runs one full campaign outside the timed region, as
// benchmark input. Each benchmark builds its own result — no package
// state is shared between b.Run cases, so every benchmark measures the
// same thing whatever -benchtime, -count or benchmark subset is used.
func setupCampaign(b *testing.B) *core.CampaignResult {
	b.Helper()
	res := core.NewCampaign(core.DefaultConfig()).Run()
	b.ResetTimer()
	return res
}

// BenchmarkTable1AddBytecodePaths regenerates Table 1: the concolic
// execution paths of the integer-addition byte-code.
func BenchmarkTable1AddBytecodePaths(b *testing.B) {
	prims := primitives.NewTable()
	var last *concolic.Exploration
	for i := 0; i < b.N; i++ {
		explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
		last = explorer.Explore(concolic.BytecodeTarget(bytecode.OpPrimAdd))
	}
	b.StopTimer()
	b.Logf("\n%s", report.Table1(last))
}

// BenchmarkTable2Campaign regenerates Table 2: the full differential
// campaign over 4 compilers and 2 ISAs.
func BenchmarkTable2Campaign(b *testing.B) {
	var res *core.CampaignResult
	for i := 0; i < b.N; i++ {
		res = core.NewCampaign(core.DefaultConfig()).Run()
	}
	b.ReportMetric(float64(res.TotalDifferences()), "differences/op")
	b.StopTimer()
	b.Logf("\n%s", report.Table2(res))
}

// BenchmarkCampaignParallel measures the parallel campaign engine: the
// full Table 2 campaign sharded over 1, 2 and GOMAXPROCS workers. The
// deterministic merge keeps every variant's output byte-identical; only
// wall-clock changes. The telemetry=on variants quantify the overhead of
// full metric collection (EXPERIMENTS.md records the numbers; the
// contract is <3%). The cache=cold/cache=warm variants measure the
// persistent exploration cache (internal/excache): cold populates a
// fresh directory each iteration, warm replays a pre-populated one (the
// acceptance contract is warm >= 3x faster than cold). Every iteration
// builds its configuration from scratch, so -benchtime and -count runs
// are independent.
func BenchmarkCampaignParallel(b *testing.B) {
	benchConfig := func(workers int, withTelemetry bool) core.Config {
		cfg := core.DefaultConfig()
		cfg.Workers = workers
		if withTelemetry {
			cfg.Metrics = telemetry.NewRegistry()
		}
		return cfg
	}
	for _, bc := range []struct {
		name      string
		workers   int
		telemetry bool
	}{
		{"workers=1", 1, false},
		{"workers=1/telemetry=on", 1, true},
		{"workers=2", 2, false},
		{fmt.Sprintf("workers=gomaxprocs(%d)", runtime.GOMAXPROCS(0)), 0, false},
		{fmt.Sprintf("workers=gomaxprocs(%d)/telemetry=on", runtime.GOMAXPROCS(0)), 0, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			var res *core.CampaignResult
			for i := 0; i < b.N; i++ {
				res = core.NewCampaign(benchConfig(bc.workers, bc.telemetry)).Run()
			}
			b.ReportMetric(float64(res.TotalDifferences()), "differences/op")
		})
	}
	b.Run("workers=1/cache=cold", func(b *testing.B) {
		var res *core.CampaignResult
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "cogdiff-bench-cache-*")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			cfg := benchConfig(1, false)
			cache, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW})
			if err != nil {
				b.Fatal(err)
			}
			cfg.Cache = cache
			res = core.NewCampaign(cfg).Run()
			b.StopTimer()
			os.RemoveAll(dir)
			b.StartTimer()
		}
		b.ReportMetric(float64(res.TotalDifferences()), "differences/op")
	})
	b.Run("workers=1/cache=warm", func(b *testing.B) {
		dir := b.TempDir()
		warmup := benchConfig(1, false)
		cache, err := excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW})
		if err != nil {
			b.Fatal(err)
		}
		warmup.Cache = cache
		core.NewCampaign(warmup).Run()
		b.ResetTimer()
		var res *core.CampaignResult
		for i := 0; i < b.N; i++ {
			cfg := benchConfig(1, false)
			cfg.Cache, err = excache.Open(excache.Config{Dir: dir, Mode: excache.ModeRW})
			if err != nil {
				b.Fatal(err)
			}
			res = core.NewCampaign(cfg).Run()
		}
		b.ReportMetric(float64(res.TotalDifferences()), "differences/op")
	})
}

// BenchmarkFuzzThroughput measures the coverage-guided sequence fuzzing
// engine in executions per second, serial and sharded over GOMAXPROCS
// workers. The deterministic batch merge keeps the discovered differences
// identical across variants; only wall-clock changes. The telemetry=on
// variants quantify the overhead of full metric collection (<3% contract,
// see EXPERIMENTS.md).
func BenchmarkFuzzThroughput(b *testing.B) {
	for _, bc := range []struct {
		name      string
		workers   int
		telemetry bool
	}{
		{"workers=1", 1, false},
		{"workers=1/telemetry=on", 1, true},
		{fmt.Sprintf("workers=gomaxprocs(%d)", runtime.GOMAXPROCS(0)), 0, false},
		{fmt.Sprintf("workers=gomaxprocs(%d)/telemetry=on", runtime.GOMAXPROCS(0)), 0, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const budget = 256
			var last *fuzzer.Result
			for i := 0; i < b.N; i++ {
				opts := fuzzer.Options{Seed: 2022, Budget: budget, Workers: bc.workers}
				if bc.telemetry {
					opts.Metrics = telemetry.NewRegistry()
				}
				res, err := fuzzer.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(float64(budget)*float64(b.N)/b.Elapsed().Seconds(), "execs/s")
			b.ReportMetric(float64(len(last.Differences)), "differences/op")
		})
	}
}

// BenchmarkTable3DefectFamilies regenerates Table 3: difference causes
// deduplicated into the six defect families.
func BenchmarkTable3DefectFamilies(b *testing.B) {
	res := setupCampaign(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table3(res)
	}
	b.StopTimer()
	b.Logf("\n%s", out)
}

// BenchmarkFig5PathsPerInstruction regenerates Figure 5: the
// paths-per-instruction distribution per instruction kind.
func BenchmarkFig5PathsPerInstruction(b *testing.B) {
	res := setupCampaign(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Figure5(res)
	}
	b.StopTimer()
	b.Logf("\n%s", out)
}

// BenchmarkFig6ConcolicTime regenerates Figure 6: concolic exploration
// time per instruction kind. The timed loop explores a representative
// instruction pair so the benchmark measures exploration itself.
func BenchmarkFig6ConcolicTime(b *testing.B) {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	bcTarget := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	nmTarget := concolic.NativeMethodTarget(primitives.PrimIdxBitShift, "primitiveBitShift", 1)
	res := setupCampaign(b)
	for i := 0; i < b.N; i++ {
		explorer.Explore(bcTarget)
		explorer.Explore(nmTarget)
	}
	b.StopTimer()
	b.Logf("\n%s", report.Figure6(res))
}

// BenchmarkFig7TestTime regenerates Figure 7: differential test execution
// time per instruction per compiler. The timed loop measures one
// differential test end to end.
func BenchmarkFig7TestTime(b *testing.B) {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	ex := explorer.Explore(target)
	cfg := core.DefaultConfig()
	tester := core.NewTester(prims, cfg.Defects)
	res := setupCampaign(b)
	for i := 0; i < b.N; i++ {
		for _, p := range ex.Paths {
			for _, isa := range cfg.ISAs {
				tester.TestPath(target, ex, p, core.StackToRegisterCompiler, isa)
			}
		}
	}
	b.StopTimer()
	b.Logf("\n%s", report.Figure7(res))
}

// randomBaselinePaths is the black-box baseline of the ablation: throw
// random concrete frames at the interpreter and count the distinct
// behaviours (exit conditions + selectors) it exhibits.
func randomBaselinePaths(target concolic.Target, prims *primitives.Table, tries int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	for i := 0; i < tries; i++ {
		om := heap.NewBootedObjectMemory()
		randVal := func() interp.Value {
			switch rng.Intn(5) {
			case 0:
				return interp.Concrete(heap.SmallIntFor(int64(rng.Intn(200) - 100)))
			case 1:
				f, _ := om.NewFloat(rng.Float64() * 10)
				return interp.Concrete(f)
			case 2:
				return interp.Concrete(om.NilObj)
			case 3:
				o := om.MustAllocate(heap.ClassIndexObject, heap.FormatFixed, rng.Intn(3))
				return interp.Concrete(o)
			default:
				return interp.Concrete(om.BoolObject(rng.Intn(2) == 0))
			}
		}
		var stack, temps []interp.Value
		for j := 0; j < rng.Intn(4); j++ {
			stack = append(stack, randVal())
		}
		nt := 0
		if target.Kind == concolic.TargetBytecode {
			nt = target.Method.TempCount()
		} else {
			nt = target.PrimNumArgs
		}
		for j := 0; j < nt; j++ {
			temps = append(temps, randVal())
		}
		frame := interp.NewFrame(randVal(), temps, stack)
		ctx := interp.NewCtx(om, frame, target.Method)
		ctx.Primitives = prims
		var exit interp.Exit
		if target.Kind == concolic.TargetBytecode {
			exit = interp.RunInstruction(ctx)
		} else {
			exit = interp.RunPrimitive(ctx, prims, target.PrimIndex)
		}
		seen[fmt.Sprintf("%s/%s/%d", exit.Kind, exit.Selector, exit.FailCode)] = true
	}
	return len(seen)
}

// BenchmarkAblationRandomVsConcolic compares black-box random testing
// against interpreter-guided concolic exploration on path coverage
// (DESIGN.md design decision 1: the single-source interpreter makes the
// exhaustive exploration possible).
func BenchmarkAblationRandomVsConcolic(b *testing.B) {
	prims := primitives.NewTable()
	target := concolic.NativeMethodTarget(primitives.PrimIdxBitShift, "primitiveBitShift", 1)
	var concolicPaths, randomPaths int
	for i := 0; i < b.N; i++ {
		explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
		ex := explorer.Explore(target)
		concolicPaths = len(ex.Paths)
		randomPaths = randomBaselinePaths(target, prims, ex.Iterations, int64(i))
	}
	b.StopTimer()
	b.Logf("primitiveBitShift: concolic found %d paths; random testing with the same execution budget found %d distinct behaviours",
		concolicPaths, randomPaths)
}

// BenchmarkAblationExplorationCache quantifies reusing cached concolic
// explorations across compilers (§5.4: "the results of the concolic
// exploration can be cached and reused multiple times").
func BenchmarkAblationExplorationCache(b *testing.B) {
	prims := primitives.NewTable()
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	cached := explorer.Explore(target)
	cfg := core.DefaultConfig()
	tester := core.NewTester(prims, cfg.Defects)

	b.Run("cached-exploration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range cached.Paths {
				tester.TestPath(target, cached, p, core.StackToRegisterCompiler, cfg.ISAs[0])
			}
		}
	})
	b.Run("fresh-exploration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ex := explorer.Explore(target)
			for _, p := range ex.Paths {
				tester.TestPath(target, ex, p, core.StackToRegisterCompiler, cfg.ISAs[0])
			}
		}
	})
}

// BenchmarkAblationCompilerCodeQuality compares the code the three
// byte-code tiers emit for the same instruction (the optimisation ladder
// of §4.1): the simulation stack and the linear-scan allocator shrink the
// emitted machine code.
func BenchmarkAblationCompilerCodeQuality(b *testing.B) {
	prims := primitives.NewTable()
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	target := concolic.BytecodeTarget(bytecode.OpPrimAdd)
	ex := explorer.Explore(target)
	cfg := core.DefaultConfig()
	tester := core.NewTester(prims, cfg.Defects)

	kinds := []core.CompilerKind{core.SimpleBytecodeCompiler, core.StackToRegisterCompiler, core.RegisterAllocatingCompiler}
	sizes := make(map[core.CompilerKind]int)
	steps := make(map[core.CompilerKind]int)
	for i := 0; i < b.N; i++ {
		for _, kind := range kinds {
			for _, p := range ex.Paths {
				v := tester.TestPath(target, ex, p, kind, cfg.ISAs[0])
				if v.Observed != nil {
					sizes[kind] += v.Observed.CodeBytes
					steps[kind] += v.Observed.Steps
				}
			}
		}
	}
	b.StopTimer()
	for _, kind := range kinds {
		b.Logf("%-35s total code bytes=%d, executed steps=%d", kind, sizes[kind]/b.N, steps[kind]/b.N)
	}
}
