package cogdiff

import (
	"context"
	"fmt"
	"time"

	"cogdiff/internal/core"
	"cogdiff/internal/fuzzer"
	"cogdiff/internal/telemetry"
)

// FuzzOptions configures a coverage-guided sequence-fuzzing run (the
// paper's closing future work: "generate minimal and relevant byte-code
// sequences for unit testing the JIT compiler").
type FuzzOptions struct {
	// Context, when non-nil, cancels the run: Fuzz returns ctx.Err()
	// promptly at the next batch boundary, with nothing from the
	// cancelled batch merged and the corpus file untouched.
	Context context.Context
	// Seed is the engine RNG seed; the same seed and budget reproduce the
	// run exactly, for any worker count.
	Seed int64
	// Budget is the execution budget (0 = 1000 executions).
	Budget int
	// Duration additionally caps the run by wall clock when set.
	// Duration-capped runs are not deterministic; iteration budgets are.
	Duration time.Duration
	// Workers shards each batch over this many goroutines (0 = GOMAXPROCS,
	// 1 = serial). Reports are byte-identical for any worker count.
	Workers int
	// Compilers selects the compiler set by canonical name (empty =
	// SequenceCompilers(), the three hand-written byte-code compilers).
	// Adding "metajit" also runs the meta-compiled front-end; sequences
	// it declines (witness-baking families) skip that pair
	// deterministically. The native compiler is rejected here.
	Compilers []string
	// Minimize reduces every difference to a 1-minimal sequence.
	Minimize bool
	// CorpusPath, when set, loads the JSON corpus before the run and
	// persists the grown corpus after it, making campaigns resumable.
	CorpusPath string
	// SeedCorpusDir, when set, loads a `go test fuzz v1` directory — the
	// FuzzSequenceDiff seed corpus — as additional seed inputs.
	SeedCorpusDir string
	// EmitTests, when set, writes the reduced differences to this path as
	// a ready-to-run Go test file.
	EmitTests string
	// OnProgress, when non-nil, receives a serialized callback after every
	// merged batch.
	OnProgress func(done, total, corpusSize, causes int)
	// Metrics, when non-nil, receives execution counters, corpus gauges
	// and batch/span timings. It is a pure observation sink: all rendered
	// reports are byte-identical with or without it.
	Metrics *telemetry.Registry
	// CacheDir and CacheMode accept the campaign-wide exploration-cache
	// flags for CLI uniformity. Sequence fuzzing performs no per-
	// instruction concolic exploration, so the cache is validated and
	// opened but sees no traffic (BENCH_fuzz.json reports hit rate 0).
	CacheDir  string
	CacheMode string
}

// FuzzDifference is one deduplicated difference cause found by fuzzing.
type FuzzDifference struct {
	Instrument string
	Family     string
	Compiler   string
	ISA        string
	Detail     string
	// SequenceLen and ReducedLen count byte-codes before and after
	// difference minimization (ReducedLen == SequenceLen when minimization
	// is off).
	SequenceLen int
	ReducedLen  int
	// ReducedListing is the disassembly of the minimal sequence.
	ReducedListing string
}

// FuzzSummary is a completed fuzzing run.
type FuzzSummary struct {
	Executions   int
	Discarded    int
	CorpusSize   int
	CoverageBits int
	Differences  []FuzzDifference
	// SeededCausesRediscovered lists catalog IDs of seeded defects the run
	// rediscovered through sequences, in catalog order.
	SeededCausesRediscovered []string
	// Report is the deterministic plain-text report.
	Report string
	// CodeCache reports the in-process compiled-code cache's hit/miss
	// counts (diagnostics only; the report is byte-identical with the
	// cache on or off).
	CodeCache CodeCacheStats
}

// Fuzz runs a coverage-guided differential fuzzing campaign over byte-code
// sequences: the interpreter and all three byte-code compilers (on both
// ISAs) execute each sequence, differences are classified, deduplicated by
// cause and — with Minimize — shrunk to 1-minimal sequences.
func Fuzz(opts FuzzOptions) (*FuzzSummary, error) {
	if _, err := openCache(opts.CacheDir, opts.CacheMode, opts.Metrics); err != nil {
		return nil, err
	}
	var kinds []core.CompilerKind
	if len(opts.Compilers) > 0 {
		for _, name := range opts.Compilers {
			if name == CompilerNativeMethods {
				return nil, fmt.Errorf("cogdiff: the %s compiler does not compile sequences", CompilerNativeMethods)
			}
		}
		var err error
		if kinds, err = compilerKindsOf(opts.Compilers); err != nil {
			return nil, err
		}
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := fuzzer.RunContext(ctx, fuzzer.Options{
		Seed:       opts.Seed,
		Budget:     opts.Budget,
		Duration:   opts.Duration,
		Workers:    opts.Workers,
		Compilers:  kinds,
		Minimize:   opts.Minimize,
		CorpusPath: opts.CorpusPath,
		SeedDir:    opts.SeedCorpusDir,
		EmitTests:  opts.EmitTests,
		OnProgress: opts.OnProgress,
		Metrics:    opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	out := &FuzzSummary{
		Executions:               res.Executions,
		Discarded:                res.Discarded,
		CorpusSize:               res.CorpusSize,
		CoverageBits:             res.CoverageBits,
		SeededCausesRediscovered: res.Matched,
		Report:                   fuzzer.Report(res),
		CodeCache:                CodeCacheStats{Hits: res.CodeCache.Hits, Misses: res.CodeCache.Misses},
	}
	for _, d := range res.Differences {
		fd := FuzzDifference{
			Instrument:  d.Instrument,
			Family:      d.Family.String(),
			Compiler:    d.Compiler.String(),
			ISA:         d.ISA.String(),
			Detail:      d.Detail,
			SequenceLen: len(d.Seq.Code),
			ReducedLen:  len(d.Seq.Code),
		}
		if d.Reduced != nil {
			fd.ReducedLen = len(d.Reduced.Code)
			fd.ReducedListing = d.Reduced.Method("reduced").Disassemble()
		}
		out.Differences = append(out.Differences, fd)
	}
	return out, nil
}
