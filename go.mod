module cogdiff

go 1.22
