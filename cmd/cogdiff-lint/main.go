// Command cogdiff-lint runs the repository's invariant linters (see
// internal/analyzers): determinism hazards, cache-key version stamps and
// telemetry metric naming.
//
// It speaks two protocols:
//
//	cogdiff-lint [dir]
//	    Standalone: type-check every package under the module rooted at
//	    dir (default: the module containing the working directory) from
//	    source and lint them all. Exits 1 if any diagnostic fires.
//
//	go vet -vettool=$(which cogdiff-lint) ./...
//	    The go command's unitchecker protocol: cogdiff-lint is invoked
//	    once per package with a JSON .cfg file describing the unit
//	    (files, import map, export data), plus -V=full and -flags
//	    handshakes. This mode rides the go command's action cache, so
//	    incremental lints are cheap.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cogdiff/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The unitchecker handshake and per-package invocations from
	// `go vet -vettool` are recognized by shape, before flag parsing.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			return printVersion()
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0])
		}
	}
	return runStandalone(args)
}

// runStandalone lints the whole module from source.
func runStandalone(args []string) int {
	if len(args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: cogdiff-lint [module-dir]")
		return 2
	}
	start := "."
	if len(args) == 1 {
		start = args[0]
	}
	root, modPath, err := findModule(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cogdiff-lint:", err)
		return 2
	}
	loader := analyzers.NewLoader(root, modPath)
	pkgs, err := loader.ModulePackages()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cogdiff-lint:", err)
		return 2
	}
	exit := 0
	for _, pkg := range pkgs {
		pass, err := loader.LoadPackage(pkg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cogdiff-lint:", err)
			exit = 2
			continue
		}
		for _, d := range analyzers.RunAll(pass) {
			fmt.Fprintln(os.Stderr, d)
			if exit == 0 {
				exit = 1
			}
		}
	}
	return exit
}

// findModule walks upward from dir to the enclosing go.mod and returns
// the module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
