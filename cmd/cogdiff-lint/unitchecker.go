package main

// The `go vet -vettool` unitchecker protocol, implemented against the
// standard library only. The go command drives a vet tool like this:
//
//  1. `tool -V=full` — a stable version line, hashed into the action
//     cache key. We hash the executable itself so rebuilding the tool
//     invalidates cached vet results.
//  2. `tool -flags` — a JSON description of the tool's flags; we expose
//     none, so the answer is the empty list.
//  3. `tool <unit>.cfg` — once per package. The cfg JSON names the
//     unit's Go files, its import map, and the export data produced by
//     the surrounding build. The tool must write its facts file to
//     VetxOutput (ours is empty: these analyzers are local) and report
//     diagnostics on stderr as `file:line:col: message`, exiting
//     nonzero if any fired.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"cogdiff/internal/analyzers"
)

// vetConfig mirrors the fields of the go command's vet config JSON that
// this tool consumes. Unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers the -V=full handshake with a line keyed to the
// executable's content hash.
func printVersion() int {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("cogdiff-lint version devel buildID=%x\n", h.Sum(nil)[:12])
	return 0
}

// runUnit checks one package unit described by a vet cfg file.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cogdiff-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "cogdiff-lint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts file to exist even when empty;
	// writing it first keeps every exit path below valid.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "cogdiff-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: the go command wants facts, and these
		// analyzers produce none.
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export-data importer over the build's package files, with the
	// import map applied first (vendoring, test variants).
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return base.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tconf := types.Config{Importer: imp}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	pass := &analyzers.Pass{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		ImportPath: cfg.ImportPath,
	}
	diags := analyzers.RunAll(pass)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		// go vet surfaces stderr verbatim; the file:line:col prefix lets
		// editors and CI annotate the exact site.
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	return 2
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
