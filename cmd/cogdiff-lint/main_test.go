package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStandaloneCleanModule runs the standalone driver over this module
// exactly as `make lint` does and requires a clean exit: the repository
// must satisfy its own invariants.
func TestStandaloneCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is seconds of work; skipped in -short")
	}
	if code := run(nil); code != 0 {
		t.Fatalf("cogdiff-lint on this module exited %d, want 0 (diagnostics on stderr)", code)
	}
}

// TestUnitcheckerHandshake pins the two go-vet handshake replies the go
// command parses before trusting a vet tool.
func TestUnitcheckerHandshake(t *testing.T) {
	if code := run([]string{"-flags"}); code != 0 {
		t.Fatalf("-flags exited %d, want 0", code)
	}
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d, want 0", code)
	}
}

// TestFindModule resolves the enclosing module from a package subdir.
func TestFindModule(t *testing.T) {
	root, path, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "cogdiff" {
		t.Errorf("module path = %q, want cogdiff", path)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("module root %s has no go.mod: %v", root, err)
	}
}
