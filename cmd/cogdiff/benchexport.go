package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cogdiff"
	"cogdiff/internal/telemetry"
)

// bench-export measures one engine end to end and emits a machine-
// readable benchmark record (BENCH_campaign.json / BENCH_fuzz.json), so
// the perf trajectory of this and future changes lives in versionable
// JSON history instead of prose. With -cache-dir, the campaign mode runs
// cold (empty cache) then warm, verifies the deterministic report
// surfaces are byte-identical, and records the speedup; -min-speedup
// turns the measurement into a CI gate (make cache-smoke).

// benchSchema stamps the record layout; bump on field changes.
// Schema 2 (raw-speed overhaul) adds the compiled-code cache hit rate,
// the measured per-path allocation split (warm reuse vs fresh boots),
// and the carried-forward pre-overhaul baseline used by perf-smoke.
// Schema 3 (fifth compiler) adds per-compiler tested-unit counts to
// campaign records, so the perf history distinguishes a four-compiler
// run from a five-compiler one.
// Schema 4 (static IR verification) adds the verifier's cost and
// verdict to campaign records: verifierNsShare is the fraction of
// campaign wall time spent in the static verifier (its own telemetry
// histogram over the measured iterations' wall time), and
// verifierViolations counts static rejections (zero on a sound tree).
const benchSchema = "cogdiff-bench/4"

// benchRecord is one exported measurement.
type benchRecord struct {
	Schema     string `json:"schema"`
	Name       string `json:"name"`
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`
	Iterations int    `json:"iterations"`
	Workers    int    `json:"workers"`

	// NsPerOp and AllocsPerOp measure the steady state: the warm runs
	// when a cache directory is in play, the plain runs otherwise.
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp uint64  `json:"allocsPerOp"`
	Differences int     `json:"differences"`
	HitRate     float64 `json:"cacheHitRate"`
	// CodeCacheHitRate is the in-process compiled-code cache's hit rate
	// over the measured runs (distinct from the on-disk exploration
	// cache's cacheHitRate above).
	CodeCacheHitRate float64 `json:"codeCacheHitRate"`

	// CompilerUnits maps each compiler in the measured campaign to its
	// tested-instruction count, so a record documents which compiler set
	// produced its numbers. Campaign records only.
	CompilerUnits map[string]int `json:"compilerUnits,omitempty"`

	// Per-path allocation economics, campaign records only: warm is the
	// steady-state cost of testing one more path of an explored unit
	// (pooled environments, warm code cache, shared reference); fresh is
	// the pre-overhaul boot-and-compile-per-call cost, re-measured on
	// this machine so the reduction ratio is hardware-honest.
	PerPathAllocsWarm     float64 `json:"perPathAllocsWarm,omitempty"`
	PerPathAllocsFresh    float64 `json:"perPathAllocsFresh,omitempty"`
	PerPathAllocReduction float64 `json:"perPathAllocReduction,omitempty"`

	// Verifier economics, campaign records only: the static IR
	// verifier's share of campaign wall time (its self-timed telemetry
	// histogram over the measured wall time — subtracting two noisy
	// wall clocks could not support a few-percent gate) and the total
	// violations it raised across the measured iterations. The
	// histogram sums across workers, so the share is a CPU share:
	// gate it at -workers 1, where it equals the wall-time share.
	// Cached campaign records carry the cold run's violation count and
	// no share — the measured warm iterations replay compiles from the
	// exploration cache, so the verifier never runs in them.
	VerifierNsShare    float64 `json:"verifierNsShare,omitempty"`
	VerifierViolations int64   `json:"verifierViolations,omitempty"`

	// BaselineNsPerOp carries the pre-overhaul wall time for this record's
	// configuration (copied forward from the committed baseline file);
	// BaselineSpeedup is this measurement against it.
	BaselineNsPerOp int64   `json:"baselineNsPerOp,omitempty"`
	BaselineSpeedup float64 `json:"baselineSpeedup,omitempty"`

	// Cold/warm split and speedup, present only for cached campaign runs.
	ColdNsPerOp int64   `json:"coldNsPerOp,omitempty"`
	WarmNsPerOp int64   `json:"warmNsPerOp,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`

	// Served-job throughput and latency quantiles, present only for
	// serve records (jobs submitted concurrently over HTTP to an
	// in-process server; latency measured submit-to-terminal).
	JobsPerSec  float64 `json:"jobsPerSec,omitempty"`
	P50NsPerJob int64   `json:"p50NsPerJob,omitempty"`
	P99NsPerJob int64   `json:"p99NsPerJob,omitempty"`
}

func runBenchExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench-export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	iterations := fs.Int("iterations", 3, "measured iterations (after the cold run, when caching)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "campaign mode: measure cold vs warm through this cache directory")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless warm speedup over cold reaches this factor")
	baseline := fs.String("baseline", "", "committed BENCH_*.json to gate against (carries the pre-overhaul baselineNsPerOp forward)")
	minBaselineSpeedup := fs.Float64("min-baseline-speedup", 0, "fail unless this run beats the baseline's pre-overhaul time by this factor (requires -baseline)")
	minAllocReduction := fs.Float64("min-alloc-reduction", 0, "campaign mode: fail unless warm per-path allocs undercut the fresh-boot measurement by this fraction (0..1)")
	minCodeCacheHitRate := fs.Float64("min-codecache-hitrate", 0, "fail unless the in-process compiled-code cache's hit rate reaches this fraction (0..1)")
	maxVerifierShare := fs.Float64("max-verifier-share", 0, "campaign mode: fail if the static IR verifier's share of wall time exceeds this fraction (0..1)")
	out := fs.String("out", "", "write the JSON record to this file (default stdout)")
	lint := fs.Bool("lint", false, "validate existing BENCH_*.json files instead of measuring")
	fuzzBudget := fs.Int("fuzz-budget", 2000, "fuzz mode: execution budget per iteration")
	serveJobs := fs.Int("serve-jobs", 16, "serve mode: difftest jobs submitted concurrently per iteration")
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return 1
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *lint {
		if fs.NArg() == 0 {
			usage(stderr)
			return 2
		}
		for _, path := range fs.Args() {
			if err := lintBenchFile(path); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "%s: OK\n", path)
		}
		return 0
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	if *iterations < 1 {
		return fail(fmt.Errorf("-iterations %d: must be >= 1", *iterations))
	}
	if err := validateWorkers(*workers); err != nil {
		return fail(err)
	}

	var rec *benchRecord
	var err error
	switch fs.Arg(0) {
	case "campaign":
		rec, err = benchCampaign(*iterations, *workers, *cacheDir, *minSpeedup, *maxVerifierShare)
	case "fuzz":
		rec, err = benchFuzz(*iterations, *workers, *fuzzBudget)
	case "serve":
		rec, err = benchServe(*iterations, *workers, *serveJobs)
	default:
		return fail(fmt.Errorf("bench-export %q: want campaign, fuzz or serve", fs.Arg(0)))
	}
	if err != nil {
		return fail(err)
	}
	if rec.Name == "campaign" {
		// Per-path allocation economics, measured fresh on this machine:
		// committed ratios from other hardware would gate nothing.
		warm, fresh := cogdiff.MeasurePerPathAllocs()
		rec.PerPathAllocsWarm, rec.PerPathAllocsFresh = warm, fresh
		if fresh > 0 {
			rec.PerPathAllocReduction = 1 - warm/fresh
		}
		if *minAllocReduction > 0 && rec.PerPathAllocReduction < *minAllocReduction {
			return fail(fmt.Errorf("bench-export: per-path alloc reduction %.1f%% below required %.1f%% (warm %.1f, fresh %.1f allocs/path)",
				100*rec.PerPathAllocReduction, 100**minAllocReduction, warm, fresh))
		}
	}
	if *minCodeCacheHitRate > 0 && rec.CodeCacheHitRate < *minCodeCacheHitRate {
		// The generational code cache must keep hot entries resident; the
		// old flush-whole eviction zeroed the warm hit rate of long runs,
		// which this gate pins against regressing.
		return fail(fmt.Errorf("bench-export: code-cache hit rate %.1f%% below required %.1f%%",
			100*rec.CodeCacheHitRate, 100**minCodeCacheHitRate))
	}
	if *minBaselineSpeedup > 0 && *baseline == "" {
		return fail(fmt.Errorf("bench-export: -min-baseline-speedup requires -baseline"))
	}
	if *baseline != "" {
		base, berr := loadBenchBaseline(*baseline, rec.Name)
		if berr != nil {
			return fail(berr)
		}
		// The pre-overhaul time rides along from record to record: once
		// captured it stays the fixed point every future run is gated
		// against, so the speedup cannot silently re-baseline itself.
		rec.BaselineNsPerOp = base.BaselineNsPerOp
		if rec.BaselineNsPerOp == 0 {
			rec.BaselineNsPerOp = base.NsPerOp
		}
		if rec.BaselineNsPerOp > 0 && rec.NsPerOp > 0 {
			rec.BaselineSpeedup = float64(rec.BaselineNsPerOp) / float64(rec.NsPerOp)
		}
		if *minBaselineSpeedup > 0 && rec.BaselineSpeedup < *minBaselineSpeedup {
			return fail(fmt.Errorf("bench-export: %.2fx over the pre-overhaul baseline, required %.2fx (baseline %s, now %s)",
				rec.BaselineSpeedup, *minBaselineSpeedup, time.Duration(rec.BaselineNsPerOp), time.Duration(rec.NsPerOp)))
		}
	}
	rec.Schema = benchSchema
	rec.GoVersion = runtime.Version()
	rec.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rec.Timestamp = time.Now().UTC().Format(time.RFC3339) //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
	rec.Iterations = *iterations
	rec.Workers = *workers

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "%s: %s written\n", rec.Name, *out)
	return 0
}

// loadBenchBaseline reads a committed benchmark record to gate against,
// insisting it describe the same engine.
func loadBenchBaseline(path, name string) (*benchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Name != name {
		return nil, fmt.Errorf("%s: baseline records %q, this run measures %q", path, rec.Name, name)
	}
	if rec.NsPerOp <= 0 && rec.BaselineNsPerOp <= 0 {
		return nil, fmt.Errorf("%s: baseline has no usable nsPerOp", path)
	}
	return &rec, nil
}

// measure runs fn once and returns its wall time and per-process
// allocation count delta.
func measure(fn func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
	err := fn()
	elapsed := time.Since(start) //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, err
}

// deterministicSurfaces concatenates the report surfaces that are pure
// functions of the campaign configuration (Figures 6/7 embed wall-clock
// times and are excluded; with a warm cache even they replay the cold
// run's timings, but the byte-identity contract is checked on the
// surfaces that hold for every cache state).
func deterministicSurfaces(s *cogdiff.CampaignSummary) string {
	return s.StableReport()
}

func benchCampaign(iterations, workers int, cacheDir string, minSpeedup, maxVerifierShare float64) (*benchRecord, error) {
	rec := &benchRecord{Name: "campaign"}
	opts := cogdiff.CampaignOptions{Workers: workers}

	var baseline string
	var coldNS int64
	var verifierViolations int64
	if cacheDir != "" {
		// Cold run: populate the cache from nothing. The warm iterations
		// replay compiles from the cache, so the cold run is where the
		// verifier actually sees the catalog — its violation count (zero
		// on a sound tree) rides into the record from here.
		coldReg := telemetry.NewRegistry()
		opts.Metrics = coldReg
		opts.CacheDir = cacheDir
		opts.CacheMode = "rw"
		var cold *cogdiff.CampaignSummary
		elapsed, _, err := measure(func() error {
			var rerr error
			cold, rerr = cogdiff.RunCampaign(opts)
			return rerr
		})
		if err != nil {
			return nil, err
		}
		coldNS = elapsed.Nanoseconds()
		rec.ColdNsPerOp = coldNS
		baseline = deterministicSurfaces(cold)
		verifierViolations += coldReg.Counter(telemetry.MetricIRVerifyViolations).Value()
	}

	// Measured iterations: warm when caching, plain otherwise. Uncached
	// iterations each get a fresh registry so the verifier's self-timed
	// cost and violation count accumulate over exactly the measured
	// work; warm iterations replay compiles from the cache — the
	// verifier never runs — so they stay registry-free and the cold/warm
	// speedup is not diluted by telemetry overhead.
	var totalNS int64
	var totalAllocs uint64
	var verifierSeconds float64
	for i := 0; i < iterations; i++ {
		var reg *telemetry.Registry
		if cacheDir == "" {
			reg = telemetry.NewRegistry()
		}
		opts.Metrics = reg
		var sum *cogdiff.CampaignSummary
		elapsed, allocs, err := measure(func() error {
			var rerr error
			sum, rerr = cogdiff.RunCampaign(opts)
			return rerr
		})
		if err != nil {
			return nil, err
		}
		totalNS += elapsed.Nanoseconds()
		totalAllocs += allocs
		if reg != nil {
			verifierSeconds += reg.Histogram(telemetry.MetricIRVerifySeconds, telemetry.DurationBuckets).Sum()
			verifierViolations += reg.Counter(telemetry.MetricIRVerifyViolations).Value()
		}
		rec.Differences = sum.TotalDifferences
		rec.HitRate = sum.Cache.HitRate()
		rec.CodeCacheHitRate = sum.CodeCache.HitRate()
		rec.CompilerUnits = make(map[string]int, len(sum.Rows))
		for _, row := range sum.Rows {
			rec.CompilerUnits[row.Compiler] = row.Instructions
		}
		if cacheDir != "" {
			if got := deterministicSurfaces(sum); got != baseline {
				return nil, fmt.Errorf("bench-export: warm campaign report diverged from cold (cache unsound)")
			}
		}
	}
	rec.NsPerOp = totalNS / int64(iterations)
	rec.AllocsPerOp = totalAllocs / uint64(iterations)
	// The verifier's share comes from its own telemetry histogram, not a
	// wall-clock on/off subtraction: two noisy wall times differenced
	// cannot support a few-percent threshold, the verifier's self-timed
	// total can.
	if totalNS > 0 {
		rec.VerifierNsShare = verifierSeconds / (float64(totalNS) / 1e9)
	}
	rec.VerifierViolations = verifierViolations
	if maxVerifierShare > 0 && rec.VerifierNsShare > maxVerifierShare {
		return nil, fmt.Errorf("bench-export: verifier share %.2f%% of campaign wall time exceeds the %.2f%% budget",
			100*rec.VerifierNsShare, 100*maxVerifierShare)
	}
	if cacheDir != "" {
		rec.WarmNsPerOp = rec.NsPerOp
		if rec.WarmNsPerOp > 0 {
			rec.Speedup = float64(coldNS) / float64(rec.WarmNsPerOp)
		}
		if minSpeedup > 0 && rec.Speedup < minSpeedup {
			return nil, fmt.Errorf("bench-export: warm speedup %.2fx below required %.2fx (cold %s, warm %s)",
				rec.Speedup, minSpeedup, time.Duration(coldNS), time.Duration(rec.WarmNsPerOp))
		}
	}
	return rec, nil
}

func benchFuzz(iterations, workers, budget int) (*benchRecord, error) {
	rec := &benchRecord{Name: "fuzz"}
	var totalNS int64
	var totalAllocs uint64
	for i := 0; i < iterations; i++ {
		var sum *cogdiff.FuzzSummary
		elapsed, allocs, err := measure(func() error {
			var rerr error
			sum, rerr = cogdiff.Fuzz(cogdiff.FuzzOptions{Seed: 2022, Budget: budget, Workers: workers, Minimize: true})
			return rerr
		})
		if err != nil {
			return nil, err
		}
		totalNS += elapsed.Nanoseconds()
		totalAllocs += allocs
		rec.Differences = len(sum.Differences)
		rec.CodeCacheHitRate = sum.CodeCache.HitRate()
	}
	rec.NsPerOp = totalNS / int64(iterations)
	rec.AllocsPerOp = totalAllocs / uint64(iterations)
	return rec, nil
}

// lintBenchFile validates one exported record: parseable JSON, the
// current schema stamp, and sane measurement fields. make cache-smoke
// runs it over the BENCH files the bench target just wrote.
func lintBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != benchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rec.Schema, benchSchema)
	}
	if rec.Name != "campaign" && rec.Name != "fuzz" && rec.Name != "serve" {
		return fmt.Errorf("%s: name %q, want campaign, fuzz or serve", path, rec.Name)
	}
	if rec.NsPerOp <= 0 {
		return fmt.Errorf("%s: nsPerOp %d, want > 0", path, rec.NsPerOp)
	}
	if rec.Iterations < 1 {
		return fmt.Errorf("%s: iterations %d, want >= 1", path, rec.Iterations)
	}
	if rec.HitRate < 0 || rec.HitRate > 1 {
		return fmt.Errorf("%s: cacheHitRate %v outside [0, 1]", path, rec.HitRate)
	}
	if rec.CodeCacheHitRate < 0 || rec.CodeCacheHitRate > 1 {
		return fmt.Errorf("%s: codeCacheHitRate %v outside [0, 1]", path, rec.CodeCacheHitRate)
	}
	if rec.PerPathAllocReduction < 0 || rec.PerPathAllocReduction > 1 {
		return fmt.Errorf("%s: perPathAllocReduction %v outside [0, 1]", path, rec.PerPathAllocReduction)
	}
	if rec.Name == "campaign" && rec.BaselineNsPerOp <= 0 {
		return fmt.Errorf("%s: campaign record carries no baselineNsPerOp (perf-smoke would gate nothing)", path)
	}
	if rec.Name == "campaign" && len(rec.CompilerUnits) == 0 {
		return fmt.Errorf("%s: campaign record names no compilerUnits (schema 3 records which compiler set was measured)", path)
	}
	if rec.VerifierNsShare < 0 || rec.VerifierNsShare > 1 {
		return fmt.Errorf("%s: verifierNsShare %v outside [0, 1]", path, rec.VerifierNsShare)
	}
	if rec.VerifierViolations < 0 {
		return fmt.Errorf("%s: verifierViolations %d, want >= 0", path, rec.VerifierViolations)
	}
	if rec.Name == "campaign" && rec.VerifierViolations != 0 {
		return fmt.Errorf("%s: campaign record reports %d verifier violations on the shipped catalog (want 0)", path, rec.VerifierViolations)
	}
	return nil
}
