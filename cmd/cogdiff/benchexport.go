package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"cogdiff"
)

// bench-export measures one engine end to end and emits a machine-
// readable benchmark record (BENCH_campaign.json / BENCH_fuzz.json), so
// the perf trajectory of this and future changes lives in versionable
// JSON history instead of prose. With -cache-dir, the campaign mode runs
// cold (empty cache) then warm, verifies the deterministic report
// surfaces are byte-identical, and records the speedup; -min-speedup
// turns the measurement into a CI gate (make cache-smoke).

// benchSchema stamps the record layout; bump on field changes.
const benchSchema = "cogdiff-bench/1"

// benchRecord is one exported measurement.
type benchRecord struct {
	Schema     string `json:"schema"`
	Name       string `json:"name"`
	GoVersion  string `json:"goVersion"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Timestamp  string `json:"timestamp"`
	Iterations int    `json:"iterations"`
	Workers    int    `json:"workers"`

	// NsPerOp and AllocsPerOp measure the steady state: the warm runs
	// when a cache directory is in play, the plain runs otherwise.
	NsPerOp     int64   `json:"nsPerOp"`
	AllocsPerOp uint64  `json:"allocsPerOp"`
	Differences int     `json:"differences"`
	HitRate     float64 `json:"cacheHitRate"`

	// Cold/warm split and speedup, present only for cached campaign runs.
	ColdNsPerOp int64   `json:"coldNsPerOp,omitempty"`
	WarmNsPerOp int64   `json:"warmNsPerOp,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`

	// Served-job throughput and latency quantiles, present only for
	// serve records (jobs submitted concurrently over HTTP to an
	// in-process server; latency measured submit-to-terminal).
	JobsPerSec  float64 `json:"jobsPerSec,omitempty"`
	P50NsPerJob int64   `json:"p50NsPerJob,omitempty"`
	P99NsPerJob int64   `json:"p99NsPerJob,omitempty"`
}

func runBenchExport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench-export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	iterations := fs.Int("iterations", 3, "measured iterations (after the cold run, when caching)")
	workers := fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := fs.String("cache-dir", "", "campaign mode: measure cold vs warm through this cache directory")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless warm speedup over cold reaches this factor")
	out := fs.String("out", "", "write the JSON record to this file (default stdout)")
	lint := fs.Bool("lint", false, "validate existing BENCH_*.json files instead of measuring")
	fuzzBudget := fs.Int("fuzz-budget", 2000, "fuzz mode: execution budget per iteration")
	serveJobs := fs.Int("serve-jobs", 16, "serve mode: difftest jobs submitted concurrently per iteration")
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return 1
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *lint {
		if fs.NArg() == 0 {
			usage(stderr)
			return 2
		}
		for _, path := range fs.Args() {
			if err := lintBenchFile(path); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "%s: OK\n", path)
		}
		return 0
	}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	if *iterations < 1 {
		return fail(fmt.Errorf("-iterations %d: must be >= 1", *iterations))
	}
	if err := validateWorkers(*workers); err != nil {
		return fail(err)
	}

	var rec *benchRecord
	var err error
	switch fs.Arg(0) {
	case "campaign":
		rec, err = benchCampaign(*iterations, *workers, *cacheDir, *minSpeedup)
	case "fuzz":
		rec, err = benchFuzz(*iterations, *workers, *fuzzBudget)
	case "serve":
		rec, err = benchServe(*iterations, *workers, *serveJobs)
	default:
		return fail(fmt.Errorf("bench-export %q: want campaign, fuzz or serve", fs.Arg(0)))
	}
	if err != nil {
		return fail(err)
	}
	rec.Schema = benchSchema
	rec.GoVersion = runtime.Version()
	rec.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rec.Timestamp = time.Now().UTC().Format(time.RFC3339)
	rec.Iterations = *iterations
	rec.Workers = *workers

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		stdout.Write(data)
		return 0
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "%s: %s written\n", rec.Name, *out)
	return 0
}

// measure runs fn once and returns its wall time and per-process
// allocation count delta.
func measure(fn func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, err
}

// deterministicSurfaces concatenates the report surfaces that are pure
// functions of the campaign configuration (Figures 6/7 embed wall-clock
// times and are excluded; with a warm cache even they replay the cold
// run's timings, but the byte-identity contract is checked on the
// surfaces that hold for every cache state).
func deterministicSurfaces(s *cogdiff.CampaignSummary) string {
	return s.StableReport()
}

func benchCampaign(iterations, workers int, cacheDir string, minSpeedup float64) (*benchRecord, error) {
	rec := &benchRecord{Name: "campaign"}
	opts := cogdiff.CampaignOptions{Workers: workers}

	var baseline string
	var coldNS int64
	if cacheDir != "" {
		// Cold run: populate the cache from nothing.
		opts.CacheDir = cacheDir
		opts.CacheMode = "rw"
		var cold *cogdiff.CampaignSummary
		elapsed, _, err := measure(func() error {
			var rerr error
			cold, rerr = cogdiff.RunCampaign(opts)
			return rerr
		})
		if err != nil {
			return nil, err
		}
		coldNS = elapsed.Nanoseconds()
		rec.ColdNsPerOp = coldNS
		baseline = deterministicSurfaces(cold)
	}

	// Measured iterations: warm when caching, plain otherwise.
	var totalNS int64
	var totalAllocs uint64
	for i := 0; i < iterations; i++ {
		var sum *cogdiff.CampaignSummary
		elapsed, allocs, err := measure(func() error {
			var rerr error
			sum, rerr = cogdiff.RunCampaign(opts)
			return rerr
		})
		if err != nil {
			return nil, err
		}
		totalNS += elapsed.Nanoseconds()
		totalAllocs += allocs
		rec.Differences = sum.TotalDifferences
		rec.HitRate = sum.Cache.HitRate()
		if cacheDir != "" {
			if got := deterministicSurfaces(sum); got != baseline {
				return nil, fmt.Errorf("bench-export: warm campaign report diverged from cold (cache unsound)")
			}
		}
	}
	rec.NsPerOp = totalNS / int64(iterations)
	rec.AllocsPerOp = totalAllocs / uint64(iterations)
	if cacheDir != "" {
		rec.WarmNsPerOp = rec.NsPerOp
		if rec.WarmNsPerOp > 0 {
			rec.Speedup = float64(coldNS) / float64(rec.WarmNsPerOp)
		}
		if minSpeedup > 0 && rec.Speedup < minSpeedup {
			return nil, fmt.Errorf("bench-export: warm speedup %.2fx below required %.2fx (cold %s, warm %s)",
				rec.Speedup, minSpeedup, time.Duration(coldNS), time.Duration(rec.WarmNsPerOp))
		}
	}
	return rec, nil
}

func benchFuzz(iterations, workers, budget int) (*benchRecord, error) {
	rec := &benchRecord{Name: "fuzz"}
	var totalNS int64
	var totalAllocs uint64
	for i := 0; i < iterations; i++ {
		var sum *cogdiff.FuzzSummary
		elapsed, allocs, err := measure(func() error {
			var rerr error
			sum, rerr = cogdiff.Fuzz(cogdiff.FuzzOptions{Seed: 2022, Budget: budget, Workers: workers, Minimize: true})
			return rerr
		})
		if err != nil {
			return nil, err
		}
		totalNS += elapsed.Nanoseconds()
		totalAllocs += allocs
		rec.Differences = len(sum.Differences)
	}
	rec.NsPerOp = totalNS / int64(iterations)
	rec.AllocsPerOp = totalAllocs / uint64(iterations)
	return rec, nil
}

// lintBenchFile validates one exported record: parseable JSON, the
// current schema stamp, and sane measurement fields. make cache-smoke
// runs it over the BENCH files the bench target just wrote.
func lintBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != benchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, rec.Schema, benchSchema)
	}
	if rec.Name != "campaign" && rec.Name != "fuzz" && rec.Name != "serve" {
		return fmt.Errorf("%s: name %q, want campaign, fuzz or serve", path, rec.Name)
	}
	if rec.NsPerOp <= 0 {
		return fmt.Errorf("%s: nsPerOp %d, want > 0", path, rec.NsPerOp)
	}
	if rec.Iterations < 1 {
		return fmt.Errorf("%s: iterations %d, want >= 1", path, rec.Iterations)
	}
	if rec.HitRate < 0 || rec.HitRate > 1 {
		return fmt.Errorf("%s: cacheHitRate %v outside [0, 1]", path, rec.HitRate)
	}
	return nil
}
