package main

// Golden-file tests pin the CLI's table output — report formatting and
// campaign counts — against regressions. Regenerate after an intentional
// format change with:
//
//	go test ./cmd/cogdiff/ -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("cogdiff %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden file %s\n--- golden ---\n%s\n--- got ---\n%s", name, path, want, got)
	}
}

func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1.golden", runCLI(t, "table1"))
}

func TestGoldenIR(t *testing.T) {
	// Pins the three-layer compilation dump: front-end IR, the IR after
	// each pass, and the lowered program per ISA.
	checkGolden(t, "ir.golden", runCLI(t, "ir", "primAdd", "simple"))
}

func TestGoldenCampaignTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign goldens skipped in -short mode")
	}
	// The same golden must match at every worker count: this is the
	// deterministic-merge guarantee observed from the CLI.
	checkGolden(t, "table2.golden", runCLI(t, "table2", "-workers", "1"))
	checkGolden(t, "table2.golden", runCLI(t, "table2", "-workers", "4"))
	checkGolden(t, "table3.golden", runCLI(t, "table3", "-workers", "0"))
}

func TestGoldenFuzzReport(t *testing.T) {
	// The fuzz report is golden-pinned AND must match at every worker
	// count: the canonical-order merge means the report never depends on
	// scheduling.
	args := []string{"fuzz", "-seed", "2022", "-budget", "300", "-seed-corpus",
		filepath.Join("..", "..", "internal", "core", "testdata", "fuzz", "FuzzSequenceDiff")}
	checkGolden(t, "fuzz.golden", runCLI(t, append(args, "-workers", "1")...))
	checkGolden(t, "fuzz.golden", runCLI(t, append(args, "-workers", "4")...))
}

func TestFuzzEmitTests(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fuzz_regress_test.go")
	runCLI(t, "fuzz", "-seed", "2022", "-budget", "200", "-emit-tests", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DO NOT EDIT", "package core_test", "func TestFuzzRegress", "tester.TestSequence"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("emitted test file missing %q", want)
		}
	}
}

func TestFuzzBudgetFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"fuzz", "-budget", "not-a-budget"}, &stdout, &stderr); code != 1 {
		t.Errorf("malformed -budget: exit %d, want 1", code)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	if code := run([]string{"explore", "noSuchInstruction"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown instruction: exit %d, want 1", code)
	}
}
