package main

// Golden-file tests pin the CLI's table output — report formatting and
// campaign counts — against regressions. Regenerate after an intentional
// format change with:
//
//	go test ./cmd/cogdiff/ -run TestGolden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cogdiff/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("cogdiff %v exited %d: %s", args, code, stderr.String())
	}
	return stdout.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("%s drifted from golden file %s\n--- golden ---\n%s\n--- got ---\n%s", name, path, want, got)
	}
}

func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1.golden", runCLI(t, "table1"))
}

func TestGoldenIR(t *testing.T) {
	// Pins the three-layer compilation dump: front-end IR, the IR after
	// each pass, and the lowered program per ISA.
	checkGolden(t, "ir.golden", runCLI(t, "ir", "primAdd", "simple"))
}

func TestGoldenCampaignTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign goldens skipped in -short mode")
	}
	// The same golden must match at every worker count: this is the
	// deterministic-merge guarantee observed from the CLI.
	checkGolden(t, "table2.golden", runCLI(t, "table2", "-workers", "1"))
	checkGolden(t, "table2.golden", runCLI(t, "table2", "-workers", "4"))
	checkGolden(t, "table3.golden", runCLI(t, "table3", "-workers", "0"))
}

func TestGoldenFuzzReport(t *testing.T) {
	// The fuzz report is golden-pinned AND must match at every worker
	// count: the canonical-order merge means the report never depends on
	// scheduling.
	args := []string{"fuzz", "-seed", "2022", "-budget", "300", "-seed-corpus",
		filepath.Join("..", "..", "internal", "core", "testdata", "fuzz", "FuzzSequenceDiff")}
	checkGolden(t, "fuzz.golden", runCLI(t, append(args, "-workers", "1")...))
	checkGolden(t, "fuzz.golden", runCLI(t, append(args, "-workers", "4")...))
}

// TestGoldenVerifyIR pins the compile-only verification sweep: the whole
// catalog, all five compilers, both ISAs, zero violations — and the
// report byte-identical at every worker count.
func TestGoldenVerifyIR(t *testing.T) {
	if testing.Short() {
		t.Skip("full verify-ir sweep skipped in -short mode")
	}
	checkGolden(t, "verifyir.golden", runCLI(t, "verify-ir", "-workers", "1"))
	checkGolden(t, "verifyir.golden", runCLI(t, "verify-ir", "-workers", "4"))
}

// TestGoldenVerifyIRStackLeak pins the verifier-targeted seeded defect
// being caught statically: the sweep exits 1 (it is a gate) and every
// violation carries the exact pass-level blame string.
func TestGoldenVerifyIRStackLeak(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"verify-ir", "-defect-verify-stackleak", "-compilers", "simple", "-workers", "4"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("cogdiff %v exited %d, want 1 (violations gate the run); stderr: %s", args, code, stderr.String())
	}
	out := stdout.String()
	if !bytes.Contains([]byte(out), []byte("ir-verify:stack-balance after pass:peephole")) {
		t.Fatalf("sweep output missing the static blame string:\n%s", out)
	}
	checkGolden(t, "verifyir_stackleak.golden", out)
}

// TestGoldenDifftestStackLeak pins the static verdict surface of the
// differential tester: with the seeded stack leak, difftest reports the
// difference with verifier blame — established without executing the
// broken code.
func TestGoldenDifftestStackLeak(t *testing.T) {
	checkGolden(t, "difftest_stackleak.golden",
		runCLI(t, "difftest", "-defect-verify-stackleak", "primAdd", "simple"))
}

func TestFuzzEmitTests(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fuzz_regress_test.go")
	runCLI(t, "fuzz", "-seed", "2022", "-budget", "200", "-emit-tests", path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DO NOT EDIT", "package core_test", "func TestFuzzRegress", "tester.TestSequence"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("emitted test file missing %q", want)
		}
	}
}

func TestFuzzBudgetFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"fuzz", "-budget", "not-a-budget"}, &stdout, &stderr); code != 1 {
		t.Errorf("malformed -budget: exit %d, want 1", code)
	}
}

// runCLIError runs an invocation that must fail with exit 1 and returns
// its stderr, so the error messages can be golden-pinned.
func runCLIError(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("cogdiff %v exited %d, want 1; stderr: %s", args, code, stderr.String())
	}
	return stderr.String()
}

// TestGoldenFlagValidationErrors pins the numeric-flag validation
// messages: negative worker counts and nonpositive or malformed budgets
// must be rejected before any work starts.
func TestGoldenFlagValidationErrors(t *testing.T) {
	checkGolden(t, "err_workers_negative.golden",
		runCLIError(t, "campaign", "-workers", "-1"))
	checkGolden(t, "err_fuzz_workers_negative.golden",
		runCLIError(t, "fuzz", "-workers", "-3"))
	checkGolden(t, "err_budget_zero.golden",
		runCLIError(t, "fuzz", "-budget", "0"))
	checkGolden(t, "err_budget_negative.golden",
		runCLIError(t, "fuzz", "-budget", "-10"))
	checkGolden(t, "err_budget_negative_duration.golden",
		runCLIError(t, "fuzz", "-budget", "-5s"))
	checkGolden(t, "err_budget_malformed.golden",
		runCLIError(t, "fuzz", "-budget", "not-a-budget"))
	checkGolden(t, "err_metrics_format.golden",
		runCLIError(t, "fuzz", "-budget", "10", "-metrics", "x.prom", "-metrics-format", "xml"))
}

// TestMetricsSnapshotAndLint runs a small fuzzing campaign with a
// Prometheus metrics file, validates it with the metrics-lint verb, and
// checks the JSON format parses too.
func TestMetricsSnapshotAndLint(t *testing.T) {
	dir := t.TempDir()
	prom := filepath.Join(dir, "fuzz.prom")
	runCLI(t, "fuzz", "-seed", "2022", "-budget", "200", "-metrics", prom)
	lint := runCLI(t, "metrics-lint", prom)
	if !bytes.Contains([]byte(lint), []byte("samples OK")) {
		t.Errorf("metrics-lint output %q", lint)
	}

	jsonPath := filepath.Join(dir, "fuzz.json")
	runCLI(t, "fuzz", "-seed", "2022", "-budget", "200", "-metrics", jsonPath, "-metrics-format", "json")
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	for _, section := range []string{"counters", "gauges", "histograms"} {
		if _, ok := snap[section]; !ok {
			t.Errorf("JSON snapshot missing %q section", section)
		}
	}

	// A corrupted file must fail the lint.
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("cogdiff_x{ 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"metrics-lint", bad}, &stdout, &stderr); code != 1 {
		t.Errorf("metrics-lint on a malformed file: exit %d, want 1", code)
	}
}

// TestTraceAndReportUnperturbed checks -trace writes a JSON event list
// and that enabling every observability output leaves the printed report
// byte-identical.
func TestTraceAndReportUnperturbed(t *testing.T) {
	dir := t.TempDir()
	plain := runCLI(t, "fuzz", "-seed", "2022", "-budget", "200")
	trace := filepath.Join(dir, "trace.json")
	prom := filepath.Join(dir, "m.prom")
	observed := runCLI(t, "fuzz", "-seed", "2022", "-budget", "200",
		"-metrics", prom, "-trace", trace)
	if plain != observed {
		t.Errorf("telemetry perturbed the fuzz report:\n--- plain ---\n%s\n--- observed ---\n%s", plain, observed)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace does not parse as a JSON event list: %v", err)
	}
}

func TestCLIUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no arguments: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown command: exit %d, want 2", code)
	}
	if code := run([]string{"explore", "noSuchInstruction"}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown instruction: exit %d, want 1", code)
	}
}

// TestGoldenCacheFlagErrors pins the exploration-cache flag validation:
// an unknown -cache mode, a mode that needs a directory, and a cache
// directory that cannot be created must all fail before any work starts.
func TestGoldenCacheFlagErrors(t *testing.T) {
	checkGolden(t, "err_cache_mode.golden",
		runCLIError(t, "campaign", "-cache-dir", "/dev/null/cache", "-cache", "readwrite"))
	checkGolden(t, "err_cache_requires_dir.golden",
		runCLIError(t, "campaign", "-cache", "rw"))
	// A path under a regular file cannot be created, even by root, so the
	// message is stable on any machine.
	checkGolden(t, "err_cache_dir_unwritable.golden",
		runCLIError(t, "difftest", "-cache-dir", "/dev/null/cache", "primAdd", "simple"))
}

// TestDifftestCacheRoundTrip checks the cache's observational-identity
// contract from the CLI: difftest output is byte-identical without a
// cache, populating a cold cache, served from a warm cache, and in
// ro mode against a directory that does not exist (every lookup misses).
func TestDifftestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	plain := runCLI(t, "difftest", "primAdd", "simple")
	cold := runCLI(t, "difftest", "-cache-dir", dir, "primAdd", "simple")
	warm := runCLI(t, "difftest", "-cache-dir", dir, "primAdd", "simple")
	roMiss := runCLI(t, "difftest", "-cache-dir", filepath.Join(dir, "missing"), "-cache", "ro", "primAdd", "simple")
	if plain != cold || plain != warm || plain != roMiss {
		t.Errorf("difftest output depends on cache state:\n--- plain ---\n%s--- cold ---\n%s--- warm ---\n%s--- ro miss ---\n%s",
			plain, cold, warm, roMiss)
	}
	// ro mode against the populated directory must serve hits without
	// changing the output either.
	roHit := runCLI(t, "difftest", "-cache-dir", dir, "-cache", "ro", "primAdd", "simple")
	if plain != roHit {
		t.Errorf("ro-mode hit changed difftest output:\n--- plain ---\n%s--- ro hit ---\n%s", plain, roHit)
	}
}

// TestGoldenCampaignProgressLine pins the -progress status line,
// including the cache-stats section, by rendering a snapshot with known
// counter values.
func TestGoldenCampaignProgressLine(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter(telemetry.MetricPathsExplored).Add(120)
	reg.Counter(telemetry.MetricUnitsTested).Add(40)
	reg.Counter(telemetry.MetricDifferences).Add(7)
	reg.Counter(telemetry.MetricPanicsContained).Add(1)
	reg.Counter(telemetry.MetricCacheHits).Add(33)
	reg.Counter(telemetry.MetricCacheMisses).Add(9)
	reg.Counter(telemetry.MetricCacheCorrupt).Add(2)
	checkGolden(t, "progress_campaign.golden", renderCampaignProgress(reg.Snapshot())+"\n")
}
