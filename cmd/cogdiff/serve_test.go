package main

// Flag-validation goldens for the service verbs, in the same style as
// TestGoldenFlagValidationErrors: every misconfiguration must fail
// before a listener binds or a request leaves the process, with a
// stable message.

import (
	"bytes"
	"testing"
)

func TestGoldenServeFlagErrors(t *testing.T) {
	checkGolden(t, "err_serve_max_jobs.golden",
		runCLIError(t, "serve", "-max-jobs", "-1"))
	checkGolden(t, "err_serve_workers.golden",
		runCLIError(t, "serve", "-workers", "-2"))
	checkGolden(t, "err_serve_cache_conflict.golden",
		runCLIError(t, "serve", "-cache", "rw"))
	checkGolden(t, "err_serve_cache_mode.golden",
		runCLIError(t, "serve", "-cache-dir", "/tmp/x", "-cache", "readwrite"))
	// Port 99999 is out of range on every platform, so the listen error
	// is stable.
	checkGolden(t, "err_serve_addr.golden",
		runCLIError(t, "serve", "-addr", "127.0.0.1:99999"))
}

func TestGoldenSubmitFlagErrors(t *testing.T) {
	checkGolden(t, "err_submit_poll.golden",
		runCLIError(t, "submit", "-poll", "0s", "campaign"))
	checkGolden(t, "err_submit_connect_timeout.golden",
		runCLIError(t, "submit", "-connect-timeout", "-1s", "campaign"))
	checkGolden(t, "err_submit_subcommand.golden",
		runCLIError(t, "submit", "bogus"))
	checkGolden(t, "err_submit_fuzz_budget.golden",
		runCLIError(t, "submit", "fuzz", "-budget", "0"))
	checkGolden(t, "err_submit_campaign_workers.golden",
		runCLIError(t, "submit", "campaign", "-workers", "-1"))
	checkGolden(t, "err_submit_difftest_args.golden",
		runCLIError(t, "submit", "difftest", "primAdd"))
}

func TestServeSubmitUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"serve", "extra-arg"}, &stdout, &stderr); code != 2 {
		t.Errorf("serve with positional args: exit %d, want 2", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"submit"}, &stdout, &stderr); code != 2 {
		t.Errorf("submit without a subcommand: exit %d, want 2", code)
	}
}
