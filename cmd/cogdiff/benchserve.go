package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cogdiff/internal/server"
	"cogdiff/internal/server/client"
)

// benchServe measures the service layer end to end: an in-process
// server on a loopback listener, jobs difftest specs submitted
// concurrently over real HTTP per iteration, each followed to its
// terminal state. Latency is client-observed submit-to-terminal time,
// so the quantiles include queueing — the number an operator of a
// shared server actually sees.
func benchServe(iterations, workers, jobs int) (*benchRecord, error) {
	if jobs < 1 {
		return nil, fmt.Errorf("bench-export: -serve-jobs %d: must be >= 1", jobs)
	}
	srv, err := server.New(server.Config{Workers: workers, MaxJobs: 4, MaxQueue: jobs * iterations})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	cl := client.New("http://" + ln.Addr().String())
	ctx := context.Background()
	if err := cl.WaitHealthy(ctx, 5*time.Second); err != nil {
		return nil, err
	}

	// A spread of cheap single-instruction jobs across the byte-code
	// compilers, cycled to fill the fleet.
	specs := []server.DifftestSpec{
		{Instruction: "primAdd", Compiler: "simple"},
		{Instruction: "primSubtract", Compiler: "stacktoregister"},
		{Instruction: "primMultiply", Compiler: "registerallocating"},
		{Instruction: "primitiveSize", Compiler: "native"},
	}

	rec := &benchRecord{Name: "serve"}
	var latencies []time.Duration
	var totalNS int64
	totalJobs := 0
	for i := 0; i < iterations; i++ {
		lat := make([]time.Duration, jobs)
		errs := make([]error, jobs)
		var wg sync.WaitGroup
		start := time.Now() //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
		for jobIdx := 0; jobIdx < jobs; jobIdx++ {
			wg.Add(1)
			go func(jobIdx int) {
				defer wg.Done()
				spec := specs[jobIdx%len(specs)]
				jobStart := time.Now() //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
				st, err := cl.Submit(ctx, server.JobSpec{Type: server.JobDifftest, Difftest: &spec})
				if err != nil {
					errs[jobIdx] = err
					return
				}
				final, err := cl.Wait(ctx, st.ID, 5*time.Millisecond)
				if err != nil {
					errs[jobIdx] = err
					return
				}
				if final.State != server.StateDone {
					errs[jobIdx] = fmt.Errorf("job %s: %s: %s", final.ID, final.State, final.Error)
					return
				}
				lat[jobIdx] = time.Since(jobStart) //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
			}(jobIdx)
		}
		wg.Wait()
		elapsed := time.Since(start) //cogdiff:allow-nondeterminism benchmark timing is the measurement itself
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		latencies = append(latencies, lat...)
		totalNS += elapsed.Nanoseconds()
		totalJobs += jobs
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	rec.JobsPerSec = float64(totalJobs) / (float64(totalNS) / 1e9)
	rec.P50NsPerJob = latencies[len(latencies)/2].Nanoseconds()
	rec.P99NsPerJob = latencies[(len(latencies)*99)/100].Nanoseconds()
	rec.NsPerOp = totalNS / int64(totalJobs)
	return rec, nil
}
