// Command cogdiff drives the interpreter-guided differential JIT testing
// framework from the command line.
//
// Usage:
//
//	cogdiff instructions                 list every testable VM instruction
//	cogdiff explore <instruction>        concolically explore one instruction (Table 1 format)
//	cogdiff difftest <instruction> <compiler>
//	                                     differentially test one instruction
//	                                     (compilers: native, simple, stacktoregister,
//	                                     registerallocating, metajit)
//	cogdiff ir <instruction> <compiler>  dump every compilation stage: front-end IR,
//	                                     the IR after each pass, both lowered programs
//	cogdiff campaign [-pristine] [-defect-constfold] [-compilers spec] [-workers n] [-progress]
//	                                     run the full evaluation and print every table and figure
//	                                     (-compilers +metajit adds the meta-compiled front-end)
//	cogdiff verify-ir [-compilers spec] [-workers n]
//	                                     statically verify the whole catalog: compile
//	                                     every (path, compiler, ISA) unit with the IR
//	                                     verifier on, execute nothing; exit 1 on any
//	                                     violation
//	cogdiff table1                       reproduce Table 1 (primAdd byte-code)
//	cogdiff table2|table3|fig5|fig6|fig7 run the campaign and print one artifact
//	cogdiff fuzz [-seed n] [-budget n]   coverage-guided sequence fuzzing with
//	                                     difference minimization
//	cogdiff serve [-addr host:port]      run the long-lived differential-testing
//	                                     server (jobs API, SSE progress, shared
//	                                     corpus, live /metrics)
//	cogdiff submit campaign|difftest|fuzz
//	                                     submit a job to a running server and
//	                                     print its report
//	cogdiff bench-export campaign|fuzz|serve
//	                                     measure a campaign, fuzz or served run and
//	                                     emit a machine-readable BENCH_*.json record
//	cogdiff metrics-lint <file>          validate a Prometheus metrics snapshot
//
// Campaign commands shard their work over -workers goroutines (default:
// GOMAXPROCS); every table and figure is byte-identical for any worker
// count.
//
// The campaign, table/figure, difftest and fuzz verbs share the
// exploration-cache flags -cache-dir <dir> and -cache off|ro|rw, and the
// observability flags -metrics <file>, -metrics-format json|prom,
// -trace <file> and -profile <file>. Both layers are pure with respect
// to results: all printed reports are byte-identical with the cache or
// telemetry on or off.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"time"

	"cogdiff"
	"cogdiff/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one CLI invocation, writing results to stdout and errors
// and progress to stderr. It is the testable core of the command: the
// golden-file tests drive it directly.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		usage(stderr)
		return 2
	}
	cmd, args := argv[0], argv[1:]
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return 1
	}
	switch cmd {
	case "instructions":
		for _, name := range cogdiff.Instructions() {
			fmt.Fprintln(stdout, name)
		}
	case "explore":
		fs := flag.NewFlagSet("explore", flag.ContinueOnError)
		fs.SetOutput(stderr)
		jsonOut := fs.String("o", "", "write the exploration as JSON to this file (reusable by difftest -cache-file)")
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		if *jsonOut != "" {
			data, err := cogdiff.ExploreJSON(fs.Arg(0))
			if err != nil {
				return fail(err)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "exploration of %s written to %s\n", fs.Arg(0), *jsonOut)
			return 0
		}
		out, err := cogdiff.ExploreReport(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	case "table1":
		out, err := cogdiff.ExploreReport("primAdd")
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	case "ir":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		out, err := cogdiff.DumpIR(args[0], args[1])
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	case "difftest":
		fs := flag.NewFlagSet("difftest", flag.ContinueOnError)
		fs.SetOutput(stderr)
		cacheFile := fs.String("cache-file", "", "reuse one cached exploration (JSON written by explore -o)")
		pristine := fs.Bool("pristine", false, "test the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "enable the pass-targeted constant-folding defect")
		defectMetaGuard := fs.Bool("defect-metajit-guard", false, "enable the meta-compiler guard-sign defect (metajit only)")
		defectStackLeak := fs.Bool("defect-verify-stackleak", false, "enable the verifier-targeted defect: peephole drops a pop, caught statically")
		noVerify := fs.Bool("no-verify", false, "disable the static IR verifier (on by default)")
		dumpIR := fs.String("dump-ir", "", "also dump every compilation stage: 'stdout' or a file path")
		cacheDir, cacheMode := cacheFlags(fs)
		obs := obsFlags(fs)
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if err := obs.start(false, stderr, nil); err != nil {
			return fail(err)
		}
		var res *cogdiff.InstructionResult
		var err error
		if *cacheFile != "" {
			if fs.NArg() != 1 {
				usage(stderr)
				return 2
			}
			if *pristine || *defectConstfold || *defectMetaGuard || *defectStackLeak {
				return fail(fmt.Errorf("-pristine and defect flags do not apply to cached explorations"))
			}
			data, rerr := os.ReadFile(*cacheFile)
			if rerr != nil {
				return fail(rerr)
			}
			res, err = cogdiff.TestInstructionCached(data, fs.Arg(0))
		} else {
			if fs.NArg() != 2 {
				usage(stderr)
				return 2
			}
			cfg := cogdiff.TestConfig{
				Pristine: *pristine, ConstFoldSignError: *defectConstfold,
				MetaJITGuardSignError: *defectMetaGuard, Metrics: obs.reg,
				VerifyStackLeak: *defectStackLeak, NoVerify: *noVerify,
				CacheDir: *cacheDir, CacheMode: *cacheMode,
			}
			res, err = cogdiff.TestInstructionWith(fs.Arg(0), fs.Arg(1), cfg)
		}
		if err != nil {
			return fail(err)
		}
		if err := obs.finish(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s on %s: %d paths, %d curated, %d differences\n",
			res.Instruction, res.Compiler, res.Paths, res.Curated, len(res.Differences))
		for _, d := range res.Differences {
			fmt.Fprintf(stdout, "  [%s] %s (%s): %s\n", d.ISA, d.Family, d.Cause, d.Detail)
		}
		if *dumpIR != "" {
			compiler := fs.Arg(1)
			if *cacheFile != "" {
				compiler = fs.Arg(0)
			}
			dump, derr := cogdiff.DumpIR(res.Instruction, compiler)
			if derr != nil {
				return fail(derr)
			}
			if *dumpIR == "stdout" {
				fmt.Fprint(stdout, "\n"+dump)
			} else if werr := os.WriteFile(*dumpIR, []byte(dump), 0o644); werr != nil {
				return fail(werr)
			}
		}
	case "fuzz":
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(stderr)
		seed := fs.Int64("seed", 2022, "engine RNG seed; same seed + budget reproduce the run exactly")
		workers := fs.Int("workers", 0, "worker goroutines per batch (0 = GOMAXPROCS, 1 = serial)")
		compilersSpec := fs.String("compilers", "", "compiler set: exact list like simple,metajit or additions like +metajit (default: the three byte-code compilers)")
		budget := fs.String("budget", "1000", "execution budget: an iteration count or a duration like 30s")
		corpus := fs.String("corpus", "", "JSON corpus file to load before and persist after the run")
		seedCorpus := fs.String("seed-corpus", "", "`go test fuzz v1` seed directory (FuzzSequenceDiff corpus)")
		minimize := fs.Bool("minimize", true, "reduce every difference to a 1-minimal sequence")
		emitTests := fs.String("emit-tests", "", "write reduced differences to this path as a Go test file")
		progress := fs.Bool("progress", false, "report live progress on stderr")
		cacheDir, cacheMode := cacheFlags(fs)
		obs := obsFlags(fs)
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if err := validateWorkers(*workers); err != nil {
			return fail(err)
		}
		fuzzCompilers, err := cogdiff.ParseSequenceCompilerSpec(*compilersSpec)
		if err != nil {
			return fail(err)
		}
		opts := cogdiff.FuzzOptions{
			Seed:          *seed,
			Workers:       *workers,
			Compilers:     fuzzCompilers,
			Minimize:      *minimize,
			CorpusPath:    *corpus,
			SeedCorpusDir: *seedCorpus,
			EmitTests:     *emitTests,
			CacheDir:      *cacheDir,
			CacheMode:     *cacheMode,
		}
		if n, err := strconv.Atoi(*budget); err == nil {
			if n <= 0 {
				return fail(fmt.Errorf("-budget %d: the iteration budget must be positive", n))
			}
			opts.Budget = n
		} else if d, derr := time.ParseDuration(*budget); derr == nil {
			if d <= 0 {
				return fail(fmt.Errorf("-budget %s: the time budget must be positive", d))
			}
			opts.Duration = d
		} else {
			return fail(fmt.Errorf("-budget %q is neither an iteration count nor a duration", *budget))
		}
		if err := obs.start(*progress, stderr, renderFuzzProgress); err != nil {
			return fail(err)
		}
		opts.Metrics = obs.reg
		sum, err := cogdiff.Fuzz(opts)
		if err != nil {
			return fail(err)
		}
		if err := obs.finish(); err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, sum.Report)
	case "campaign", "table2", "table3", "fig5", "fig6", "fig7":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		fs.SetOutput(stderr)
		pristine := fs.Bool("pristine", false, "run the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "enable the pass-targeted constant-folding defect")
		defectMetaGuard := fs.Bool("defect-metajit-guard", false, "enable the meta-compiler guard-sign defect (metajit only)")
		defectStackLeak := fs.Bool("defect-verify-stackleak", false, "enable the verifier-targeted defect: peephole drops a pop, caught statically")
		noVerify := fs.Bool("no-verify", false, "disable the static IR verifier (on by default)")
		compilersSpec := fs.String("compilers", "", "compiler set: exact list like simple,metajit or additions like +metajit (default: the paper's four)")
		workers := fs.Int("workers", 0, "worker goroutines for the campaign (0 = GOMAXPROCS, 1 = serial)")
		stable := fs.Bool("stable", false, "print only the deterministic report surfaces (Table 2/3, Figure 5, causes)")
		progress := fs.Bool("progress", false, "report live progress on stderr")
		cacheDir, cacheMode := cacheFlags(fs)
		obs := obsFlags(fs)
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if err := validateWorkers(*workers); err != nil {
			return fail(err)
		}
		compilers, err := cogdiff.ParseCompilerSpec(*compilersSpec)
		if err != nil {
			return fail(err)
		}
		if err := obs.start(*progress, stderr, renderCampaignProgress); err != nil {
			return fail(err)
		}
		opts := cogdiff.CampaignOptions{
			Pristine: *pristine, ConstFoldSignError: *defectConstfold,
			MetaJITGuardSignError: *defectMetaGuard, Compilers: compilers,
			VerifyStackLeak: *defectStackLeak, NoVerify: *noVerify,
			Workers: *workers, Metrics: obs.reg,
			CacheDir: *cacheDir, CacheMode: *cacheMode,
		}
		sum, err := cogdiff.RunCampaign(opts)
		if err != nil {
			return fail(err)
		}
		if err := obs.finish(); err != nil {
			return fail(err)
		}
		switch cmd {
		case "table2":
			fmt.Fprint(stdout, sum.Table2)
		case "table3":
			fmt.Fprint(stdout, sum.Table3)
		case "fig5":
			fmt.Fprint(stdout, sum.Figure5)
		case "fig6":
			fmt.Fprint(stdout, sum.Figure6)
		case "fig7":
			fmt.Fprint(stdout, sum.Figure7)
		default:
			// The duration goes to stderr with the rest of the progress
			// chatter: stdout carries only report content, so piped and
			// byte-compared campaign output never embeds wall-clock data.
			fmt.Fprintf(stderr, "campaign completed in %s\n", sum.Duration)
			if *stable {
				fmt.Fprint(stdout, sum.StableReport())
				break
			}
			fmt.Fprintln(stdout, sum.Table2)
			fmt.Fprintln(stdout, sum.Table3)
			fmt.Fprintln(stdout, sum.Figure5)
			fmt.Fprintln(stdout, sum.Figure6)
			fmt.Fprintln(stdout, sum.Figure7)
			fmt.Fprintln(stdout, "Deduplicated causes:")
			fmt.Fprintln(stdout, sum.Causes)
		}
	case "verify-ir":
		fs := flag.NewFlagSet("verify-ir", flag.ContinueOnError)
		fs.SetOutput(stderr)
		pristine := fs.Bool("pristine", false, "sweep the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "seed the pass-targeted constant-folding defect")
		defectMetaGuard := fs.Bool("defect-metajit-guard", false, "seed the meta-compiler guard-sign defect (metajit only)")
		defectStackLeak := fs.Bool("defect-verify-stackleak", false, "seed the verifier-targeted defect: peephole drops a pop")
		compilersSpec := fs.String("compilers", "", "compiler set to sweep (default: all five)")
		workers := fs.Int("workers", 0, "worker goroutines for the sweep (0 = GOMAXPROCS, 1 = serial)")
		cacheDir, cacheMode := cacheFlags(fs)
		obs := obsFlags(fs)
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if err := validateWorkers(*workers); err != nil {
			return fail(err)
		}
		var compilers []string
		if *compilersSpec != "" {
			var err error
			if compilers, err = cogdiff.ParseCompilerSpec(*compilersSpec); err != nil {
				return fail(err)
			}
		}
		if err := obs.start(false, stderr, nil); err != nil {
			return fail(err)
		}
		sum, err := cogdiff.VerifyIR(cogdiff.VerifyIROptions{
			Pristine: *pristine, ConstFoldSignError: *defectConstfold,
			MetaJITGuardSignError: *defectMetaGuard, VerifyStackLeak: *defectStackLeak,
			Compilers: compilers, Workers: *workers, Metrics: obs.reg,
			CacheDir: *cacheDir, CacheMode: *cacheMode,
		})
		if err != nil {
			return fail(err)
		}
		if err := obs.finish(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "verify-ir completed in %s\n", sum.Duration)
		fmt.Fprint(stdout, sum.Report)
		// The sweep is a gate: a dirty catalog fails the invocation.
		if sum.Violations > 0 {
			return 1
		}
	case "serve":
		return runServe(args, stdout, stderr)
	case "submit":
		return runSubmit(args, stdout, stderr)
	case "bench-export":
		return runBenchExport(args, stdout, stderr)
	case "metrics-lint":
		if len(args) != 1 {
			usage(stderr)
			return 2
		}
		data, err := os.ReadFile(args[0])
		if err != nil {
			return fail(err)
		}
		samples, err := telemetry.ParsePrometheus(string(data))
		if err != nil {
			return fail(fmt.Errorf("%s: %w", args[0], err))
		}
		fmt.Fprintf(stdout, "%s: %d samples OK\n", args[0], len(samples))
	default:
		usage(stderr)
		return 2
	}
	return 0
}

// obsRun bundles the observability flags shared by the campaign, difftest
// and fuzz verbs: a metrics snapshot file (JSON or Prometheus text
// exposition), a span-trace dump and an optional CPU profile.
type obsRun struct {
	metricsPath string
	format      string
	tracePath   string
	profilePath string

	reg      *telemetry.Registry
	profFile *os.File
	progress *telemetry.Progress
}

func obsFlags(fs *flag.FlagSet) *obsRun {
	o := &obsRun{}
	fs.StringVar(&o.metricsPath, "metrics", "", "write a metrics snapshot to this file after the run")
	fs.StringVar(&o.format, "metrics-format", "prom", "metrics snapshot format: json or prom (Prometheus text exposition)")
	fs.StringVar(&o.tracePath, "trace", "", "write the recent-span trace as JSON to this file")
	fs.StringVar(&o.profilePath, "profile", "", "write a CPU profile to this file")
	return o
}

// start validates the flag values and opens the collection machinery.
// The registry stays nil — and all instrumentation no-ops — unless some
// output actually needs it.
func (o *obsRun) start(wantProgress bool, progressOut io.Writer, render func(telemetry.Snapshot) string) error {
	if o.format != "json" && o.format != "prom" {
		return fmt.Errorf("-metrics-format %q: want json or prom", o.format)
	}
	if o.metricsPath != "" || o.tracePath != "" || wantProgress {
		o.reg = telemetry.NewRegistry()
	}
	if o.profilePath != "" {
		f, err := os.Create(o.profilePath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		o.profFile = f
	}
	if wantProgress {
		o.progress = telemetry.StartProgress(o.reg, progressOut, 2*time.Second, render)
	}
	return nil
}

// finish stops the profile and progress printer and writes the requested
// output files.
func (o *obsRun) finish() error {
	if o.progress != nil {
		o.progress.Stop()
	}
	if o.profFile != nil {
		pprof.StopCPUProfile()
		o.profFile.Close()
	}
	if o.reg == nil {
		return nil
	}
	if o.metricsPath != "" {
		snap := o.reg.Snapshot()
		var data []byte
		if o.format == "json" {
			var err error
			if data, err = snap.JSON(); err != nil {
				return err
			}
		} else {
			var buf bytes.Buffer
			if err := snap.WritePrometheus(&buf); err != nil {
				return err
			}
			data = buf.Bytes()
		}
		if err := os.WriteFile(o.metricsPath, data, 0o644); err != nil {
			return err
		}
	}
	if o.tracePath != "" {
		data, err := json.MarshalIndent(o.reg.Trace().Events(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.tracePath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// counterTotal sums every series of one counter across its label sets.
func counterTotal(s telemetry.Snapshot, name string) int64 {
	var total int64
	for series, v := range s.Counters {
		if series == name || (len(series) > len(name) && series[:len(name)] == name && series[len(name)] == '{') {
			total += v
		}
	}
	return total
}

// cacheFlags declares the exploration-cache flag pair shared by the
// campaign, table/figure, difftest and fuzz verbs.
func cacheFlags(fs *flag.FlagSet) (dir, mode *string) {
	dir = fs.String("cache-dir", "", "persistent exploration-cache directory (empty = cache disabled)")
	mode = fs.String("cache", "", "exploration-cache mode: off, ro or rw (default rw when -cache-dir is set)")
	return dir, mode
}

func renderCampaignProgress(s telemetry.Snapshot) string {
	return fmt.Sprintf("paths %d, units tested %d, differences %d, panics contained %d, cache-stats hits %d misses %d corrupt %d fingerprint-errors %d",
		counterTotal(s, telemetry.MetricPathsExplored),
		counterTotal(s, telemetry.MetricUnitsTested),
		counterTotal(s, telemetry.MetricDifferences),
		counterTotal(s, telemetry.MetricPanicsContained),
		counterTotal(s, telemetry.MetricCacheHits),
		counterTotal(s, telemetry.MetricCacheMisses),
		counterTotal(s, telemetry.MetricCacheCorrupt),
		counterTotal(s, telemetry.MetricUnitCacheFingerprintErrors))
}

func renderFuzzProgress(s telemetry.Snapshot) string {
	return fmt.Sprintf("execs %d, discarded %d, corpus %d, causes %d",
		counterTotal(s, telemetry.MetricFuzzExecs),
		counterTotal(s, telemetry.MetricFuzzDiscarded),
		s.Gauges[telemetry.MetricFuzzCorpusSize],
		counterTotal(s, telemetry.MetricFuzzDifferences))
}

// validateWorkers enforces the worker-count contract shared by every
// parallel verb: 0 means GOMAXPROCS, positive counts are explicit, and
// negative counts have no meaning.
func validateWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("-workers %d: must be >= 0 (0 means GOMAXPROCS, 1 runs serially)", n)
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  cogdiff instructions
  cogdiff explore [-o cache.json] <instruction>
  cogdiff difftest [-cache-file cache.json] [-pristine] [-defect-constfold]
                   [-defect-metajit-guard] [-dump-ir stdout|file] <instruction> <compiler>
  cogdiff ir <instruction> <compiler>
  cogdiff campaign [-pristine] [-defect-constfold] [-defect-metajit-guard]
               [-defect-verify-stackleak] [-no-verify]
               [-compilers spec] [-workers n] [-stable] [-progress]
  cogdiff verify-ir [-pristine] [-defect-verify-stackleak] [-compilers spec]
               [-workers n]    (statically verify the catalog, execute nothing;
               exits 1 on any violation)
  cogdiff table1|table2|table3|fig5|fig6|fig7 [-workers n] [-compilers spec]
  cogdiff serve [-addr host:port] [-workers n] [-max-jobs n]
               [-cache-dir dir] [-cache mode] [-corpus-dir dir]
  cogdiff submit [-addr url] [-poll dur] [-connect-timeout dur] [-progress]
               campaign|difftest|fuzz [options] [args]
  cogdiff fuzz [-seed n] [-budget n|30s] [-workers n] [-compilers spec]
               [-corpus file.json] [-seed-corpus dir] [-minimize]
               [-emit-tests file_test.go] [-progress]
  cogdiff bench-export [-iterations n] [-workers n] [-cache-dir dir]
               [-min-speedup x] [-out file.json] campaign|fuzz
  cogdiff bench-export -lint file.json...
  cogdiff metrics-lint <metrics.prom>

exploration cache (campaign, table*/fig*, difftest, fuzz):
  -cache-dir dir        persistent exploration-cache directory
  -cache mode           off, ro or rw (default rw when -cache-dir is set)

compiler sets (campaign, table*/fig*, fuzz):
  -compilers spec       comma-separated compiler names for an exact set, or
                        +name additions to the default set; "+metajit" adds
                        the meta-compiled front-end to the default compilers

observability (campaign, table*/fig*, difftest, fuzz):
  -metrics file         write a metrics snapshot after the run
  -metrics-format fmt   snapshot format: prom (default) or json
  -trace file           write the recent-span trace as JSON
  -profile file         write a CPU profile`)
}
