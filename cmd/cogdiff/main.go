// Command cogdiff drives the interpreter-guided differential JIT testing
// framework from the command line.
//
// Usage:
//
//	cogdiff instructions                 list every testable VM instruction
//	cogdiff explore <instruction>        concolically explore one instruction (Table 1 format)
//	cogdiff difftest <instruction> <compiler>
//	                                     differentially test one instruction
//	                                     (compilers: native, simple, stacktoregister, registerallocating)
//	cogdiff ir <instruction> <compiler>  dump every compilation stage: front-end IR,
//	                                     the IR after each pass, both lowered programs
//	cogdiff campaign [-pristine] [-defect-constfold] [-workers n] [-progress]
//	                                     run the full evaluation and print every table and figure
//	cogdiff table1                       reproduce Table 1 (primAdd byte-code)
//	cogdiff table2|table3|fig5|fig6|fig7 run the campaign and print one artifact
//	cogdiff fuzz [-seed n] [-budget n]   coverage-guided sequence fuzzing with
//	                                     difference minimization
//
// Campaign commands shard their work over -workers goroutines (default:
// GOMAXPROCS); every table and figure is byte-identical for any worker
// count.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"cogdiff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes one CLI invocation, writing results to stdout and errors
// and progress to stderr. It is the testable core of the command: the
// golden-file tests drive it directly.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		usage(stderr)
		return 2
	}
	cmd, args := argv[0], argv[1:]
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return 1
	}
	switch cmd {
	case "instructions":
		for _, name := range cogdiff.Instructions() {
			fmt.Fprintln(stdout, name)
		}
	case "explore":
		fs := flag.NewFlagSet("explore", flag.ContinueOnError)
		fs.SetOutput(stderr)
		jsonOut := fs.String("o", "", "write the exploration as JSON to this file (reusable by difftest -cache)")
		if err := fs.Parse(args); err != nil {
			return 2
		}
		if fs.NArg() != 1 {
			usage(stderr)
			return 2
		}
		if *jsonOut != "" {
			data, err := cogdiff.ExploreJSON(fs.Arg(0))
			if err != nil {
				return fail(err)
			}
			if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "exploration of %s written to %s\n", fs.Arg(0), *jsonOut)
			return 0
		}
		out, err := cogdiff.ExploreReport(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	case "table1":
		out, err := cogdiff.ExploreReport("primAdd")
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	case "ir":
		if len(args) != 2 {
			usage(stderr)
			return 2
		}
		out, err := cogdiff.DumpIR(args[0], args[1])
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, out)
	case "difftest":
		fs := flag.NewFlagSet("difftest", flag.ContinueOnError)
		fs.SetOutput(stderr)
		cache := fs.String("cache", "", "reuse a cached exploration (JSON written by explore -o)")
		pristine := fs.Bool("pristine", false, "test the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "enable the pass-targeted constant-folding defect")
		dumpIR := fs.String("dump-ir", "", "also dump every compilation stage: 'stdout' or a file path")
		if err := fs.Parse(args); err != nil {
			return 2
		}
		var res *cogdiff.InstructionResult
		var err error
		if *cache != "" {
			if fs.NArg() != 1 {
				usage(stderr)
				return 2
			}
			if *pristine || *defectConstfold {
				return fail(fmt.Errorf("-pristine and -defect-constfold do not apply to cached explorations"))
			}
			data, rerr := os.ReadFile(*cache)
			if rerr != nil {
				return fail(rerr)
			}
			res, err = cogdiff.TestInstructionCached(data, fs.Arg(0))
		} else {
			if fs.NArg() != 2 {
				usage(stderr)
				return 2
			}
			cfg := cogdiff.TestConfig{Pristine: *pristine, ConstFoldSignError: *defectConstfold}
			res, err = cogdiff.TestInstructionWith(fs.Arg(0), fs.Arg(1), cfg)
		}
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s on %s: %d paths, %d curated, %d differences\n",
			res.Instruction, res.Compiler, res.Paths, res.Curated, len(res.Differences))
		for _, d := range res.Differences {
			fmt.Fprintf(stdout, "  [%s] %s (%s): %s\n", d.ISA, d.Family, d.Cause, d.Detail)
		}
		if *dumpIR != "" {
			compiler := fs.Arg(1)
			if *cache != "" {
				compiler = fs.Arg(0)
			}
			dump, derr := cogdiff.DumpIR(res.Instruction, compiler)
			if derr != nil {
				return fail(derr)
			}
			if *dumpIR == "stdout" {
				fmt.Fprint(stdout, "\n"+dump)
			} else if werr := os.WriteFile(*dumpIR, []byte(dump), 0o644); werr != nil {
				return fail(werr)
			}
		}
	case "fuzz":
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(stderr)
		seed := fs.Int64("seed", 2022, "engine RNG seed; same seed + budget reproduce the run exactly")
		workers := fs.Int("workers", 0, "worker goroutines per batch (0 = GOMAXPROCS, 1 = serial)")
		budget := fs.String("budget", "1000", "execution budget: an iteration count or a duration like 30s")
		corpus := fs.String("corpus", "", "JSON corpus file to load before and persist after the run")
		seedCorpus := fs.String("seed-corpus", "", "`go test fuzz v1` seed directory (FuzzSequenceDiff corpus)")
		minimize := fs.Bool("minimize", true, "reduce every difference to a 1-minimal sequence")
		emitTests := fs.String("emit-tests", "", "write reduced differences to this path as a Go test file")
		progress := fs.Bool("progress", false, "report batch progress on stderr")
		if err := fs.Parse(args); err != nil {
			return 2
		}
		opts := cogdiff.FuzzOptions{
			Seed:          *seed,
			Workers:       *workers,
			Minimize:      *minimize,
			CorpusPath:    *corpus,
			SeedCorpusDir: *seedCorpus,
			EmitTests:     *emitTests,
		}
		if n, err := strconv.Atoi(*budget); err == nil {
			opts.Budget = n
		} else if d, derr := time.ParseDuration(*budget); derr == nil {
			opts.Duration = d
		} else {
			return fail(fmt.Errorf("-budget %q is neither an iteration count nor a duration", *budget))
		}
		if *progress {
			opts.OnProgress = func(done, total, corpusSize, causes int) {
				fmt.Fprintf(stderr, "[%d/%d] corpus %d, causes %d\n", done, total, corpusSize, causes)
			}
		}
		sum, err := cogdiff.Fuzz(opts)
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, sum.Report)
	case "campaign", "table2", "table3", "fig5", "fig6", "fig7":
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		fs.SetOutput(stderr)
		pristine := fs.Bool("pristine", false, "run the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "enable the pass-targeted constant-folding defect")
		workers := fs.Int("workers", 0, "worker goroutines for the campaign (0 = GOMAXPROCS, 1 = serial)")
		progress := fs.Bool("progress", false, "report per-instruction progress on stderr")
		if err := fs.Parse(args); err != nil {
			return 2
		}
		opts := cogdiff.CampaignOptions{Pristine: *pristine, ConstFoldSignError: *defectConstfold, Workers: *workers}
		if *progress {
			opts.OnInstructionDone = func(compiler, instruction string, done, total int) {
				fmt.Fprintf(stderr, "[%d/%d] %s: %s\n", done, total, compiler, instruction)
			}
		}
		sum := cogdiff.RunCampaign(opts)
		switch cmd {
		case "table2":
			fmt.Fprint(stdout, sum.Table2)
		case "table3":
			fmt.Fprint(stdout, sum.Table3)
		case "fig5":
			fmt.Fprint(stdout, sum.Figure5)
		case "fig6":
			fmt.Fprint(stdout, sum.Figure6)
		case "fig7":
			fmt.Fprint(stdout, sum.Figure7)
		default:
			fmt.Fprintf(stdout, "campaign completed in %s\n\n", sum.Duration)
			fmt.Fprintln(stdout, sum.Table2)
			fmt.Fprintln(stdout, sum.Table3)
			fmt.Fprintln(stdout, sum.Figure5)
			fmt.Fprintln(stdout, sum.Figure6)
			fmt.Fprintln(stdout, sum.Figure7)
			fmt.Fprintln(stdout, "Deduplicated causes:")
			fmt.Fprintln(stdout, sum.Causes)
		}
	default:
		usage(stderr)
		return 2
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  cogdiff instructions
  cogdiff explore [-o cache.json] <instruction>
  cogdiff difftest [-cache cache.json] [-pristine] [-defect-constfold]
                   [-dump-ir stdout|file] <instruction> <compiler>
  cogdiff ir <instruction> <compiler>
  cogdiff campaign [-pristine] [-defect-constfold] [-workers n] [-progress]
  cogdiff table1|table2|table3|fig5|fig6|fig7 [-workers n]
  cogdiff fuzz [-seed n] [-budget n|30s] [-workers n] [-corpus file.json]
               [-seed-corpus dir] [-minimize] [-emit-tests file_test.go] [-progress]`)
}
