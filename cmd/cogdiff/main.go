// Command cogdiff drives the interpreter-guided differential JIT testing
// framework from the command line.
//
// Usage:
//
//	cogdiff instructions                 list every testable VM instruction
//	cogdiff explore <instruction>        concolically explore one instruction (Table 1 format)
//	cogdiff difftest <instruction> <compiler>
//	                                     differentially test one instruction
//	                                     (compilers: native, simple, stacktoregister, registerallocating)
//	cogdiff campaign [-pristine]         run the full evaluation and print every table and figure
//	cogdiff table1                       reproduce Table 1 (primAdd byte-code)
//	cogdiff table2|table3|fig5|fig6|fig7 run the campaign and print one artifact
package main

import (
	"flag"
	"fmt"
	"os"

	"cogdiff"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "instructions":
		for _, name := range cogdiff.Instructions() {
			fmt.Println(name)
		}
	case "explore":
		fs := flag.NewFlagSet("explore", flag.ExitOnError)
		jsonOut := fs.String("o", "", "write the exploration as JSON to this file (reusable by difftest -cache)")
		exitOn(fs.Parse(args))
		if fs.NArg() != 1 {
			usage()
			os.Exit(2)
		}
		if *jsonOut != "" {
			data, err := cogdiff.ExploreJSON(fs.Arg(0))
			exitOn(err)
			exitOn(os.WriteFile(*jsonOut, data, 0o644))
			fmt.Printf("exploration of %s written to %s\n", fs.Arg(0), *jsonOut)
			return
		}
		out, err := cogdiff.ExploreReport(fs.Arg(0))
		exitOn(err)
		fmt.Print(out)
	case "table1":
		out, err := cogdiff.ExploreReport("primAdd")
		exitOn(err)
		fmt.Print(out)
	case "difftest":
		fs := flag.NewFlagSet("difftest", flag.ExitOnError)
		cache := fs.String("cache", "", "reuse a cached exploration (JSON written by explore -o)")
		exitOn(fs.Parse(args))
		var res *cogdiff.InstructionResult
		var err error
		if *cache != "" {
			if fs.NArg() != 1 {
				usage()
				os.Exit(2)
			}
			data, rerr := os.ReadFile(*cache)
			exitOn(rerr)
			res, err = cogdiff.TestInstructionCached(data, fs.Arg(0))
		} else {
			if fs.NArg() != 2 {
				usage()
				os.Exit(2)
			}
			res, err = cogdiff.TestInstruction(fs.Arg(0), fs.Arg(1))
		}
		exitOn(err)
		fmt.Printf("%s on %s: %d paths, %d curated, %d differences\n",
			res.Instruction, res.Compiler, res.Paths, res.Curated, len(res.Differences))
		for _, d := range res.Differences {
			fmt.Printf("  [%s] %s: %s\n", d.ISA, d.Family, d.Detail)
		}
	case "campaign", "table2", "table3", "fig5", "fig6", "fig7":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		pristine := fs.Bool("pristine", false, "run the defect-free VM configuration")
		exitOn(fs.Parse(args))
		sum := cogdiff.RunCampaign(cogdiff.CampaignOptions{Pristine: *pristine})
		switch cmd {
		case "table2":
			fmt.Print(sum.Table2)
		case "table3":
			fmt.Print(sum.Table3)
		case "fig5":
			fmt.Print(sum.Figure5)
		case "fig6":
			fmt.Print(sum.Figure6)
		case "fig7":
			fmt.Print(sum.Figure7)
		default:
			fmt.Printf("campaign completed in %s\n\n", sum.Duration)
			fmt.Println(sum.Table2)
			fmt.Println(sum.Table3)
			fmt.Println(sum.Figure5)
			fmt.Println(sum.Figure6)
			fmt.Println(sum.Figure7)
			fmt.Println("Deduplicated causes:")
			fmt.Println(sum.Causes)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cogdiff:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cogdiff instructions
  cogdiff explore [-o cache.json] <instruction>
  cogdiff difftest [-cache cache.json] <instruction> <compiler>
  cogdiff campaign [-pristine]
  cogdiff table1|table2|table3|fig5|fig6|fig7`)
}
