package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"cogdiff/internal/server"
	"cogdiff/internal/server/client"
)

// runServe implements `cogdiff serve`: start the differential-testing
// server and block until the listener fails or the process receives an
// interrupt. All chatter goes to stderr; stdout stays silent so the
// verb composes in scripts.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (host:port)")
	workers := fs.Int("workers", 0, "default worker goroutines per job (0 = GOMAXPROCS, 1 = serial)")
	maxJobs := fs.Int("max-jobs", 2, "concurrently running jobs")
	corpusDir := fs.String("corpus-dir", "", "directory persisting the shared fuzzing corpus (empty = in-memory)")
	cacheDir, cacheMode := cacheFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return 1
	}
	if fs.NArg() != 0 {
		usage(stderr)
		return 2
	}
	if err := validateWorkers(*workers); err != nil {
		return fail(err)
	}
	if *maxJobs < 0 {
		return fail(fmt.Errorf("-max-jobs %d: must be >= 0 (0 means the default of 2)", *maxJobs))
	}

	srv, err := server.New(server.Config{
		Workers:   *workers,
		CacheDir:  *cacheDir,
		CacheMode: *cacheMode,
		CorpusDir: *corpusDir,
		MaxJobs:   *maxJobs,
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(fmt.Errorf("-addr %s: %w", *addr, err))
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(stderr, "cogdiff server listening on %s\n", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		return fail(err)
	}
	return 0
}

// runSubmit implements `cogdiff submit`: build a job spec from the
// subcommand's flags, post it to a running server, follow its progress
// and print the report. The report goes to stdout and everything else
// to stderr, so a submitted campaign pipes exactly like a local one.
func runSubmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:8377", "server base URL")
	poll := fs.Duration("poll", 100*time.Millisecond, "status polling interval")
	connectTimeout := fs.Duration("connect-timeout", 5*time.Second, "how long to wait for the server to answer /healthz")
	progress := fs.Bool("progress", false, "stream the job's SSE events to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return 1
	}
	if *poll <= 0 {
		return fail(fmt.Errorf("-poll %s: must be positive", *poll))
	}
	if *connectTimeout <= 0 {
		return fail(fmt.Errorf("-connect-timeout %s: must be positive", *connectTimeout))
	}
	if fs.NArg() < 1 {
		usage(stderr)
		return 2
	}

	spec, code := parseSubmitSpec(fs.Arg(0), fs.Args()[1:], stderr)
	if code != 0 {
		return code
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	cl := client.New(*addr)
	if err := cl.WaitHealthy(ctx, *connectTimeout); err != nil {
		return fail(err)
	}
	st, err := cl.Submit(ctx, *spec)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "submitted %s as %s\n", st.Type, st.ID)

	if *progress {
		done := make(chan struct{})
		go func() {
			defer close(done)
			cl.Events(ctx, st.ID, func(ev server.Event) error {
				fmt.Fprintf(stderr, "event %s: %s\n", st.ID, renderEvent(ev))
				return nil
			})
		}()
		defer func() { <-done }()
	}

	final, err := cl.Wait(ctx, st.ID, *poll)
	if err != nil {
		return fail(err)
	}
	switch final.State {
	case server.StateDone:
		fmt.Fprint(stdout, final.Report)
		return 0
	case server.StateCanceled:
		return fail(fmt.Errorf("job %s was canceled", final.ID))
	default:
		return fail(fmt.Errorf("job %s failed: %s", final.ID, final.Error))
	}
}

// parseSubmitSpec builds a JobSpec from one submit subcommand.
func parseSubmitSpec(kind string, args []string, stderr io.Writer) (*server.JobSpec, int) {
	fail := func(err error) (*server.JobSpec, int) {
		fmt.Fprintln(stderr, "cogdiff:", err)
		return nil, 1
	}
	switch kind {
	case "campaign":
		fs := flag.NewFlagSet("submit campaign", flag.ContinueOnError)
		fs.SetOutput(stderr)
		pristine := fs.Bool("pristine", false, "run the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "enable the pass-targeted constant-folding defect")
		defectMetaGuard := fs.Bool("defect-metajit-guard", false, "enable the meta-compiler guard-sign defect (metajit only)")
		compilers := fs.String("compilers", "", "compiler set: exact list like simple,metajit or additions like +metajit")
		workers := fs.Int("workers", 0, "worker goroutines for the campaign (0 = the server's default)")
		cache := fs.String("cache", "", "override the server's cache mode for this job: off, ro or rw")
		if err := fs.Parse(args); err != nil {
			return nil, 2
		}
		if err := validateWorkers(*workers); err != nil {
			return fail(err)
		}
		return &server.JobSpec{Type: server.JobCampaign, Campaign: &server.CampaignSpec{
			Pristine:              *pristine,
			ConstFoldSignError:    *defectConstfold,
			MetaJITGuardSignError: *defectMetaGuard,
			Compilers:             *compilers,
			Workers:               *workers,
			Cache:                 *cache,
		}}, 0
	case "difftest":
		fs := flag.NewFlagSet("submit difftest", flag.ContinueOnError)
		fs.SetOutput(stderr)
		pristine := fs.Bool("pristine", false, "test the defect-free VM configuration")
		defectConstfold := fs.Bool("defect-constfold", false, "enable the pass-targeted constant-folding defect")
		defectMetaGuard := fs.Bool("defect-metajit-guard", false, "enable the meta-compiler guard-sign defect (metajit only)")
		if err := fs.Parse(args); err != nil {
			return nil, 2
		}
		if fs.NArg() != 2 {
			return fail(fmt.Errorf("submit difftest needs <instruction> <compiler>"))
		}
		return &server.JobSpec{Type: server.JobDifftest, Difftest: &server.DifftestSpec{
			Instruction:           fs.Arg(0),
			Compiler:              fs.Arg(1),
			Pristine:              *pristine,
			ConstFoldSignError:    *defectConstfold,
			MetaJITGuardSignError: *defectMetaGuard,
		}}, 0
	case "fuzz":
		fs := flag.NewFlagSet("submit fuzz", flag.ContinueOnError)
		fs.SetOutput(stderr)
		seed := fs.Int64("seed", 2022, "engine RNG seed")
		budget := fs.Int("budget", 1000, "execution budget (iterations)")
		workers := fs.Int("workers", 0, "worker goroutines per batch (0 = the server's default)")
		compilers := fs.String("compilers", "", "compiler set: exact list like simple,metajit or additions like +metajit")
		minimize := fs.Bool("minimize", true, "reduce every difference to a 1-minimal sequence")
		shared := fs.Bool("shared-corpus", false, "seed from and merge back into the server's shared corpus")
		if err := fs.Parse(args); err != nil {
			return nil, 2
		}
		if err := validateWorkers(*workers); err != nil {
			return fail(err)
		}
		if *budget <= 0 {
			return fail(fmt.Errorf("-budget %d: the iteration budget must be positive", *budget))
		}
		return &server.JobSpec{Type: server.JobFuzz, Fuzz: &server.FuzzSpec{
			Seed:         *seed,
			Budget:       *budget,
			Workers:      *workers,
			Compilers:    *compilers,
			Minimize:     *minimize,
			SharedCorpus: *shared,
		}}, 0
	default:
		return fail(fmt.Errorf("unknown submit subcommand %q (want campaign, difftest or fuzz)", kind))
	}
}

// renderEvent formats one SSE event for the -progress stream.
func renderEvent(ev server.Event) string {
	switch ev.Type {
	case server.EventUnitCompleted:
		return fmt.Sprintf("unit %d/%d %s %s (%d differences)",
			ev.Done, ev.Total, ev.Compiler, ev.Instruction, ev.Differences)
	case server.EventDifferenceFound:
		return fmt.Sprintf("differences: %d in %s on %s", ev.Differences, ev.Instruction, ev.Compiler)
	case server.EventProgress:
		return fmt.Sprintf("fuzz %d/%d execs, corpus %d, causes %d", ev.Done, ev.Total, ev.Corpus, ev.Differences)
	case server.EventCacheStats:
		return fmt.Sprintf("cache hits %d misses %d corrupt %d writes %d", ev.Hits, ev.Misses, ev.Corrupt, ev.Writes)
	case server.EventDone:
		return fmt.Sprintf("done: %s", ev.State)
	}
	return ev.Type
}
