package cogdiff

import (
	"fmt"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/core"
	"cogdiff/internal/defects"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
)

// This file exposes the extension features: exploration caching and
// byte-code sequence testing (the paper's future work).

// ExploreJSON explores an instruction and serializes the result, so it
// can be cached on disk and reused across processes (§5.4).
func ExploreJSON(name string) ([]byte, error) {
	target, prims, err := resolveTarget(name)
	if err != nil {
		return nil, err
	}
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	return concolic.MarshalExploration(explorer.Explore(target))
}

// TestInstructionCached differentially tests using a cached exploration
// produced by ExploreJSON, skipping the concolic phase entirely.
func TestInstructionCached(cached []byte, compiler string) (*InstructionResult, error) {
	ex, err := concolic.UnmarshalExploration(cached)
	if err != nil {
		return nil, err
	}
	kind, err := compilerKindOf(compiler)
	if err != nil {
		return nil, err
	}
	prims := primitives.NewTable()
	tester := core.NewTester(prims, defects.ProductionVM())
	res := &InstructionResult{
		Instruction: ex.Target.Name,
		Compiler:    compiler,
		Paths:       len(ex.Paths) + ex.CuratedOut,
	}
	for _, p := range ex.Paths {
		curated := false
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			v := tester.TestPath(ex.Target, ex, p, kind, isa)
			if !v.Skipped {
				curated = true
			}
			if v.Differs {
				fam := core.Classify(ex.Target, prims, v.InterpExit, v.Observed)
				res.Differences = append(res.Differences, Difference{
					Instruction: ex.Target.Name,
					Compiler:    compiler,
					ISA:         isa.String(),
					Family:      fam.String(),
					Cause:       v.Cause,
					Detail:      v.Detail,
				})
			}
		}
		if curated {
			res.Curated++
		}
	}
	return res, nil
}

// Program is a byte-code method under construction for sequence testing.
// It wraps the method builder with the subset of operations the public
// sequence API supports.
type Program struct {
	b *bytecode.Builder
}

// NewProgram starts a method taking numArgs arguments.
func NewProgram(name string, numArgs int) *Program {
	return &Program{b: bytecode.NewBuilder(name, numArgs)}
}

// PushInt, PushArg, PushReceiver, Dup, Pop push and shuffle operands.
func (p *Program) PushInt(v int64) *Program { p.b.PushInt(v); return p }
func (p *Program) PushArg(i int) *Program   { p.b.PushTemp(i); return p }
func (p *Program) PushReceiver() *Program   { p.b.PushReceiver(); return p }
func (p *Program) Dup() *Program            { p.b.Dup(); return p }
func (p *Program) Pop() *Program            { p.b.Pop(); return p }
func (p *Program) Add() *Program            { p.b.Add(); return p }
func (p *Program) Subtract() *Program       { p.b.Subtract(); return p }
func (p *Program) Multiply() *Program       { p.b.Multiply(); return p }
func (p *Program) LessThan() *Program       { p.b.LessThan(); return p }
func (p *Program) Equal() *Program          { p.b.Equal(); return p }
func (p *Program) ReturnTop() *Program      { p.b.ReturnTop(); return p }
func (p *Program) ReturnReceiver() *Program { p.b.ReturnReceiver(); return p }
func (p *Program) Label(name string) *Program {
	p.b.Label(name)
	return p
}
func (p *Program) JumpIfTrue(label string) *Program  { p.b.JumpIfTrue(label); return p }
func (p *Program) JumpIfFalse(label string) *Program { p.b.JumpIfFalse(label); return p }
func (p *Program) Send(selector string, numArgs int) *Program {
	p.b.Send(selector, numArgs)
	return p
}

// SequenceResult reports a sequence differential test.
type SequenceResult struct {
	Compiler string
	ISA      string
	Differs  bool
	Detail   string
	// Outcome describes the agreed (or interpreter-side) boundary
	// behaviour, e.g. "return int:5" or "send #foo:/1 ...".
	Outcome string
}

// TestProgram differentially tests a whole byte-code sequence against
// every byte-code compiler on both ISAs. Receiver and arguments are
// small integers.
func TestProgram(p *Program, receiver int64, args ...int64) ([]SequenceResult, error) {
	m, err := p.b.Method()
	if err != nil {
		return nil, fmt.Errorf("cogdiff: %w", err)
	}
	in := core.SequenceInput{Receiver: core.Int64(receiver)}
	for _, a := range args {
		in.Args = append(in.Args, core.Int64(a))
	}
	tester := core.NewTester(primitives.NewTable(), defects.ProductionVM())
	var out []SequenceResult
	for _, kind := range []core.CompilerKind{
		core.SimpleBytecodeCompiler, core.StackToRegisterCompiler, core.RegisterAllocatingCompiler,
	} {
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			v, err := tester.TestSequence(m, in, kind, isa)
			if err != nil {
				return nil, err
			}
			out = append(out, SequenceResult{
				Compiler: kind.String(),
				ISA:      isa.String(),
				Differs:  v.Differs,
				Detail:   v.Detail,
				Outcome:  v.Interp.String(),
			})
		}
	}
	return out, nil
}
