// Package cogdiff is an interpreter-guided differential unit-testing
// framework for JIT compilers, reproducing "Interpreter-guided
// Differential JIT Compiler Unit Testing" (Polito, Tesone, Ducasse,
// PLDI 2022) as a self-contained Go system.
//
// The framework applies concolic testing to a byte-code interpreter to
// discover every execution path of each VM instruction together with the
// path's input constraints, output constraints and exit condition. Each
// path is then replayed against JIT-compiled code — four compilers, two
// simulated ISAs — and the observable behaviours are compared.
//
// The package exposes three levels of use:
//
//   - Explore: concolically enumerate the execution paths of one VM
//     instruction (paper §2.3, Table 1).
//   - TestInstruction: differentially test one instruction against one
//     compiler (paper §2.4).
//   - RunCampaign: the full evaluation — every instruction, every
//     compiler, every ISA — producing the paper's Table 2, Table 3 and
//     Figures 5-7 (paper §5).
package cogdiff

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"cogdiff/internal/bytecode"
	"cogdiff/internal/concolic"
	"cogdiff/internal/core"
	"cogdiff/internal/defects"
	"cogdiff/internal/excache"
	"cogdiff/internal/machine"
	"cogdiff/internal/primitives"
	"cogdiff/internal/report"
	"cogdiff/internal/telemetry"
)

// openCache builds the exploration cache from the user-facing dir+mode
// pair. An empty dir (or mode "off") yields a nil cache, which every
// engine treats as "cache disabled".
func openCache(dir, mode string, metrics *telemetry.Registry) (*excache.Cache, error) {
	m, err := excache.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	if dir == "" && mode != "" && m != excache.ModeOff {
		return nil, fmt.Errorf("-cache %s requires -cache-dir", m)
	}
	return excache.Open(excache.Config{Dir: dir, Mode: m, Metrics: metrics})
}

// CacheStats reports exploration-cache traffic for one run. Corrupt
// entries also count as misses, so Hits+Misses equals total lookups.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Corrupt int64
	Writes  int64
	Evicted int64
}

// HitRate returns Hits/(Hits+Misses), zero when the cache saw no traffic.
func (s CacheStats) HitRate() float64 {
	return excache.Stats{Hits: s.Hits, Misses: s.Misses}.HitRate()
}

func cacheStatsOf(c *excache.Cache) CacheStats {
	s := c.Stats()
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Corrupt: s.Corrupt, Writes: s.Writes, Evicted: s.Evicted}
}

// Compiler names accepted by TestInstruction.
const (
	CompilerNativeMethods      = "native"
	CompilerSimple             = "simple"
	CompilerStackToRegister    = "stacktoregister"
	CompilerRegisterAllocating = "registerallocating"
	CompilerMetaJIT            = "metajit"
)

// DefaultCompilers is the campaign's default compiler set: the four the
// paper evaluates. The meta-compiled front-end (CompilerMetaJIT) is
// opt-in — select it with "+metajit" or an explicit list.
func DefaultCompilers() []string {
	return []string{CompilerNativeMethods, CompilerSimple, CompilerStackToRegister, CompilerRegisterAllocating}
}

// AllCompilers is every compiler the framework builds: the paper's four
// plus the derived meta-compiled front-end. The verify-ir sweep defaults
// to it — static verification is cheap enough to cover the whole set.
func AllCompilers() []string {
	return append(DefaultCompilers(), CompilerMetaJIT)
}

// SequenceCompilers is the default compiler set for sequence fuzzing:
// the three hand-written byte-code compilers. Native-method templates do
// not compile sequences, and the meta-compiled front-end is opt-in.
func SequenceCompilers() []string {
	return []string{CompilerSimple, CompilerStackToRegister, CompilerRegisterAllocating}
}

// ParseCompilerSpec turns a user-facing compiler-set spec into a list of
// canonical compiler names. The spec is a comma-separated list of
// compiler names; a name prefixed with "+" extends the default set
// instead of replacing it, so "+metajit" means the default four plus the
// meta-compiled front-end while "simple,metajit" is exactly those two.
// Mixing "+" and plain names is rejected — the spec is either an exact
// set or a set of additions. An empty spec yields the default set.
func ParseCompilerSpec(spec string) ([]string, error) {
	return parseCompilerSpecWith(DefaultCompilers(), spec)
}

// ParseSequenceCompilerSpec is ParseCompilerSpec with sequence-fuzzing
// defaults: "+" additions extend SequenceCompilers(), and the native
// compiler is rejected (it has no whole-method mode).
func ParseSequenceCompilerSpec(spec string) ([]string, error) {
	names, err := parseCompilerSpecWith(SequenceCompilers(), spec)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if name == CompilerNativeMethods {
			return nil, fmt.Errorf("cogdiff: the %s compiler does not compile sequences", CompilerNativeMethods)
		}
	}
	return names, nil
}

func parseCompilerSpecWith(defaults []string, spec string) ([]string, error) {
	if strings.TrimSpace(spec) == "" {
		return append([]string(nil), defaults...), nil
	}
	var exact, added []string
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		add := strings.HasPrefix(name, "+")
		if add {
			name = name[1:]
		}
		if _, err := compilerKindOf(name); err != nil {
			return nil, err
		}
		if add {
			added = append(added, name)
		} else {
			exact = append(exact, name)
		}
	}
	if len(exact) > 0 && len(added) > 0 {
		return nil, fmt.Errorf("cogdiff: compiler spec %q mixes additions (+name) with an exact list", spec)
	}
	out := exact
	if len(added) > 0 {
		out = append(append([]string(nil), defaults...), added...)
	}
	if len(out) == 0 {
		return append([]string(nil), defaults...), nil
	}
	// Dedup, keeping first occurrence so "+metajit,+metajit" is harmless.
	seen := make(map[string]bool, len(out))
	deduped := out[:0]
	for _, name := range out {
		if !seen[name] {
			seen[name] = true
			deduped = append(deduped, name)
		}
	}
	return deduped, nil
}

// CompilerKindsFor resolves canonical compiler names (the output of
// ParseCompilerSpec / ParseSequenceCompilerSpec) to core compiler kinds.
// The server uses it to hand a resolved set to the internal fuzz engine.
func CompilerKindsFor(names []string) ([]core.CompilerKind, error) {
	return compilerKindsOf(names)
}

// compilerKindsOf resolves a canonical name list to core kinds.
func compilerKindsOf(names []string) ([]core.CompilerKind, error) {
	kinds := make([]core.CompilerKind, 0, len(names))
	for _, name := range names {
		k, err := compilerKindOf(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

// Path is one discovered execution path of an instruction.
type Path struct {
	// Exit is the path's exit condition (success, failure, messageSend,
	// methodReturn, invalidFrame, invalidMemoryAccess).
	Exit string
	// Constraints is the recorded semantic constraint path.
	Constraints string
	// Witness is the solver model that reaches this path.
	Witness string
}

// Exploration is the concolic exploration of one instruction.
type Exploration struct {
	Instruction string
	Kind        string // "bytecode" or "nativeMethod"
	Paths       []Path
	CuratedOut  int
	Iterations  int
	Duration    time.Duration
}

// resolveTarget finds an instruction by name among byte-codes and native
// methods.
func resolveTarget(name string) (concolic.Target, *primitives.Table, error) {
	prims := primitives.NewTable()
	for _, op := range bytecode.AllOpcodes() {
		d := bytecode.Describe(op)
		if d.Mnemonic == name && d.Family != bytecode.FamCallPrimitive {
			return concolic.BytecodeTarget(op), prims, nil
		}
	}
	for _, p := range prims.All() {
		if p.Name == name {
			return concolic.NativeMethodTarget(p.Index, p.Name, p.NumArgs), prims, nil
		}
	}
	return concolic.Target{}, nil, fmt.Errorf("cogdiff: unknown instruction %q (see Instructions())", name)
}

// Instructions lists every testable VM instruction: all byte-codes
// followed by all native methods.
func Instructions() []string {
	var out []string
	for _, op := range bytecode.AllOpcodes() {
		d := bytecode.Describe(op)
		if d.Family != bytecode.FamCallPrimitive {
			out = append(out, d.Mnemonic)
		}
	}
	prims := primitives.NewTable()
	for _, p := range prims.All() {
		out = append(out, p.Name)
	}
	return out
}

// Explore concolically enumerates the execution paths of the named
// instruction.
func Explore(name string) (*Exploration, error) {
	target, prims, err := resolveTarget(name)
	if err != nil {
		return nil, err
	}
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	ex := explorer.Explore(target)
	out := &Exploration{
		Instruction: name,
		Kind:        target.Kind.String(),
		CuratedOut:  ex.CuratedOut,
		Iterations:  ex.Iterations,
		Duration:    ex.Duration,
	}
	for _, p := range ex.Paths {
		out.Paths = append(out.Paths, Path{
			Exit:        p.Exit.String(),
			Constraints: p.Path.String(),
			Witness:     p.Model.String(),
		})
	}
	return out, nil
}

// ExploreReport renders the exploration of one instruction in the format
// of the paper's Table 1.
func ExploreReport(name string) (string, error) {
	target, prims, err := resolveTarget(name)
	if err != nil {
		return "", err
	}
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	return report.Table1(explorer.Explore(target)), nil
}

// Difference describes one discovered behavioural difference.
type Difference struct {
	Instruction string
	Compiler    string
	ISA         string
	Family      string
	// Cause names the compilation stage the difference is blamed on:
	// "front-end" when the unoptimized compilation already differs from
	// the interpreter, or "pass:<name>" for the first optimization pass
	// whose inclusion flips the verdict.
	Cause  string
	Detail string
}

// InstructionResult is the differential-testing outcome of one
// instruction against one compiler.
type InstructionResult struct {
	Instruction string
	Compiler    string
	Paths       int
	Curated     int
	Differences []Difference
}

// Render formats the result exactly as `cogdiff difftest` prints it.
// The server's difftest jobs return this rendering, so a served result
// is byte-identical to the local CLI run.
func (r *InstructionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %d paths, %d curated, %d differences\n",
		r.Instruction, r.Compiler, r.Paths, r.Curated, len(r.Differences))
	for _, d := range r.Differences {
		fmt.Fprintf(&b, "  [%s] %s (%s): %s\n", d.ISA, d.Family, d.Cause, d.Detail)
	}
	return b.String()
}

func compilerKindOf(name string) (core.CompilerKind, error) {
	switch name {
	case CompilerNativeMethods:
		return core.NativeMethodCompilerKind, nil
	case CompilerSimple:
		return core.SimpleBytecodeCompiler, nil
	case CompilerStackToRegister:
		return core.StackToRegisterCompiler, nil
	case CompilerRegisterAllocating:
		return core.RegisterAllocatingCompiler, nil
	case CompilerMetaJIT:
		return core.MetaJITCompiler, nil
	}
	return 0, fmt.Errorf("cogdiff: unknown compiler %q", name)
}

// TestConfig selects the VM defect state for a single-instruction test.
type TestConfig struct {
	// Pristine starts from the defect-free VM instead of the production
	// defect state.
	Pristine bool
	// ConstFoldSignError enables the pass-targeted defect: the constant
	// folder of the byte-code pipelines folds subtraction as addition.
	ConstFoldSignError bool
	// MetaJITGuardSignError enables the meta-compiler-targeted defect:
	// the derived front-end emits guard comparisons with the wrong sign
	// (< instead of <=), breaking guard-chain exclusivity on boundary
	// inputs. Only the metajit compiler is affected.
	MetaJITGuardSignError bool
	// VerifyStackLeak enables the verifier-targeted defect: the peephole
	// pass deletes the first stack pop it sees. The static IR verifier
	// catches it before execution and blames
	// "ir-verify:stack-balance after pass:peephole".
	VerifyStackLeak bool
	// NoVerify disables the static IR verifier inside every compiler.
	// Verification is on by default; results on a verifier-clean
	// configuration are byte-identical either way.
	NoVerify bool
	// Metrics, when non-nil, collects exploration and pass-pipeline
	// telemetry for the test. Pure observation sink: results are
	// identical with or without it.
	Metrics *telemetry.Registry
	// CacheDir, when non-empty, enables the persistent exploration cache
	// rooted at that directory; CacheMode selects "off", "ro" or "rw"
	// (empty = "rw"). Results are identical cached or fresh.
	CacheDir  string
	CacheMode string
}

func (c TestConfig) switches() defects.Switches {
	sw := defects.ProductionVM()
	if c.Pristine {
		sw = defects.Pristine()
	}
	sw.ConstFoldSignError = c.ConstFoldSignError
	sw.MetaJITGuardSignError = c.MetaJITGuardSignError
	sw.VerifyStackLeak = c.VerifyStackLeak
	return sw
}

// TestInstruction differentially tests one instruction against one
// compiler on both simulated ISAs, using the production defect state.
func TestInstruction(instruction, compiler string) (*InstructionResult, error) {
	return TestInstructionWith(instruction, compiler, TestConfig{})
}

// TestInstructionWith is TestInstruction under an explicit defect
// configuration.
func TestInstructionWith(instruction, compiler string, cfg TestConfig) (*InstructionResult, error) {
	target, prims, err := resolveTarget(instruction)
	if err != nil {
		return nil, err
	}
	kind, err := compilerKindOf(compiler)
	if err != nil {
		return nil, err
	}
	sw := cfg.switches()
	exOpts := concolic.DefaultOptions()
	exOpts.Metrics = cfg.Metrics
	cache, err := openCache(cfg.CacheDir, cfg.CacheMode, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	explorer := concolic.NewExplorer(prims, exOpts)
	exKey := cache.ExplorationKey(target, exOpts)
	ex, hit := cache.LoadExploration(exKey, target)
	if !hit {
		ex = explorer.Explore(target)
		cache.StoreExploration(exKey, ex)
	}
	tester := core.NewTester(prims, sw)
	if cfg.NoVerify {
		tester.SetNoVerify()
	}
	tester.SetMetrics(cfg.Metrics)

	res := &InstructionResult{Instruction: instruction, Compiler: compiler, Paths: len(ex.Paths) + ex.CuratedOut}
	run := tester.BeginUnit(target, ex)
	defer run.Close()
	for _, p := range ex.Paths {
		curated := false
		for _, isa := range []machine.ISA{machine.ISAAmd64Like, machine.ISAArm32Like} {
			v := run.TestPath(p, kind, isa)
			if !v.Skipped {
				curated = true
			}
			if v.Differs {
				fam := core.Classify(target, prims, v.InterpExit, v.Observed)
				res.Differences = append(res.Differences, Difference{
					Instruction: instruction,
					Compiler:    compiler,
					ISA:         isa.String(),
					Family:      fam.String(),
					Cause:       v.Cause,
					Detail:      v.Detail,
				})
			}
		}
		if curated {
			res.Curated++
		}
	}
	return res, nil
}

// CampaignOptions configures a full evaluation run.
type CampaignOptions struct {
	// Context, when non-nil, cancels the campaign: RunCampaign returns
	// ctx.Err() promptly at the next unit boundary, with every worker
	// goroutine joined and only complete cache entries on disk.
	Context context.Context
	// Pristine runs the defect-free VM configuration (sanity baseline)
	// instead of the production configuration the evaluation reproduces.
	Pristine bool
	// ConstFoldSignError additionally enables the pass-targeted defect in
	// the constant folder, so the campaign exercises pass-level blame.
	ConstFoldSignError bool
	// MetaJITGuardSignError additionally enables the meta-compiler
	// defect (wrong guard comparison sign in the derived front-end).
	// Only meaningful when the compiler set includes "metajit".
	MetaJITGuardSignError bool
	// VerifyStackLeak additionally enables the verifier-targeted defect:
	// the peephole pass deletes the first stack pop, which the static IR
	// verifier rejects — and blames — before execution.
	VerifyStackLeak bool
	// NoVerify disables the static IR verifier inside every compiler.
	// On a verifier-clean configuration every rendered report is
	// byte-identical either way; the knob exists to measure overhead and
	// to pin that identity in tests.
	NoVerify bool
	// Compilers selects the compiler set by canonical name (see
	// ParseCompilerSpec for the user-facing spec syntax). Empty means
	// DefaultCompilers() — the paper's four.
	Compilers []string
	// MaxIterations bounds the concolic exploration per instruction
	// (0 = default).
	MaxIterations int
	// Workers shards the campaign over this many goroutines
	// (0 = GOMAXPROCS, 1 = serial). Campaign results and all rendered
	// tables are byte-identical for any worker count.
	Workers int
	// OnInstructionDone, when non-nil, receives a serialized progress
	// callback after each (compiler, instruction) test unit completes.
	OnInstructionDone func(compiler, instruction string, done, total int)
	// OnUnitDone, when non-nil, receives the same serialized callback with
	// the unit's difference count included. The server's SSE progress
	// stream is built on it. Both callbacks may be set; each unit fires
	// both.
	OnUnitDone func(UnitProgress)
	// Metrics, when non-nil, collects campaign telemetry (counters,
	// latency histograms, spans). The registry is a pure observation
	// sink: all rendered reports are byte-identical with or without it.
	Metrics *telemetry.Registry
	// CacheDir, when non-empty, enables the persistent exploration cache
	// rooted at that directory: explorations and test-unit verdicts are
	// loaded instead of recomputed when their content keys match, and
	// written back after fresh work. All rendered reports are
	// byte-identical with the cache off, cold or warm, at any worker
	// count.
	CacheDir string
	// CacheMode selects cache participation: "off", "ro" (read, never
	// write) or "rw". Empty means "rw" when CacheDir is set.
	CacheMode string
}

// UnitProgress is one completed (compiler, instruction) test unit, as
// delivered to CampaignOptions.OnUnitDone. Done counts completed units
// in completion order, which varies with scheduling; Differences is the
// unit's differing-path count, which does not.
type UnitProgress struct {
	Compiler    string
	Instruction string
	Done        int
	Total       int
	Differences int
}

// CampaignRow mirrors one row of Table 2.
type CampaignRow struct {
	Compiler     string
	Instructions int
	Paths        int
	Curated      int
	Differences  int
}

// CampaignSummary is the full evaluation outcome with pre-rendered
// reports for each of the paper's tables and figures.
type CampaignSummary struct {
	Rows             []CampaignRow
	TotalDifferences int
	// CausesByFamily mirrors Table 3 (deduplicated root causes).
	CausesByFamily map[string]int
	TotalCauses    int

	Table2  string
	Table3  string
	Figure5 string
	Figure6 string
	Figure7 string
	Causes  string

	// Cache reports exploration-cache traffic (all zero when disabled).
	Cache CacheStats
	// FingerprintErrors counts exploration fingerprints that failed to
	// compute; the affected units ran uncached (correct but slower).
	FingerprintErrors int
	// CodeCache reports the in-process compiled-code cache's hit/miss
	// totals. Diagnostics only: counts vary with worker scheduling and
	// excache warmth, the rendered reports never do.
	CodeCache CodeCacheStats

	Duration time.Duration
}

// CodeCacheStats mirrors core.CodeCacheStats for the public API surface.
type CodeCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// HitRate returns hits/(hits+misses), or 0 for an idle cache.
func (s CodeCacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MeasurePerPathAllocs measures the execution core's per-path allocation
// cost on this machine: warm is the steady state of a batched unit run
// (pooled environments, warm compiled-code cache, shared interpreter
// reference), fresh is the same work with every reuse layer disabled —
// boot-per-execution and compile-per-call. bench-export records both and
// perf-smoke gates their ratio.
func MeasurePerPathAllocs() (warm, fresh float64) {
	return core.MeasurePerPathAllocs(false), core.MeasurePerPathAllocs(true)
}

// StableReport concatenates the report surfaces that are pure functions
// of the campaign configuration: Table 2, Table 3, Figure 5 and the
// deduplicated cause table. Figures 6/7 embed wall-clock timings and are
// excluded. This is the byte-comparison surface shared by `cogdiff
// campaign -stable`, bench-export's cache-soundness check, and the
// server's campaign jobs — a sharded server run must reproduce a serial
// CLI run byte for byte on exactly this surface.
func (s *CampaignSummary) StableReport() string {
	return s.Table2 + "\n" + s.Table3 + "\n" + s.Figure5 + "\n" + s.Causes
}

// RunCampaign executes the full evaluation: concolic exploration of every
// VM instruction followed by differential testing on all four compilers
// and both ISAs. The only error sources are cache misconfiguration (bad
// mode string, unusable cache directory) and cancellation through
// Options.Context; an uncancelled cache-less run cannot fail.
func RunCampaign(opts CampaignOptions) (*CampaignSummary, error) {
	start := time.Now() //cogdiff:allow-nondeterminism duration is summary metadata, never report-table content
	cfg := core.DefaultConfig()
	if opts.Pristine {
		cfg.Defects = defects.Pristine()
	}
	cfg.Defects.ConstFoldSignError = opts.ConstFoldSignError
	cfg.Defects.MetaJITGuardSignError = opts.MetaJITGuardSignError
	cfg.Defects.VerifyStackLeak = opts.VerifyStackLeak
	cfg.NoVerify = opts.NoVerify
	if len(opts.Compilers) > 0 {
		kinds, err := compilerKindsOf(opts.Compilers)
		if err != nil {
			return nil, err
		}
		cfg.Compilers = kinds
	}
	if opts.MaxIterations > 0 {
		cfg.Explore.MaxIterations = opts.MaxIterations
	}
	cfg.Workers = opts.Workers
	cfg.Metrics = opts.Metrics
	cache, err := openCache(opts.CacheDir, opts.CacheMode, opts.Metrics)
	if err != nil {
		return nil, err
	}
	cfg.Cache = cache
	if opts.OnInstructionDone != nil || opts.OnUnitDone != nil {
		cfg.OnInstructionDone = func(ev core.InstructionDone) {
			if opts.OnInstructionDone != nil {
				opts.OnInstructionDone(ev.Compiler.String(), ev.Instruction, ev.Done, ev.Total)
			}
			if opts.OnUnitDone != nil {
				opts.OnUnitDone(UnitProgress{
					Compiler:    ev.Compiler.String(),
					Instruction: ev.Instruction,
					Done:        ev.Done,
					Total:       ev.Total,
					Differences: ev.Differences,
				})
			}
		}
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := core.NewCampaign(cfg).RunContext(ctx)
	if err != nil {
		return nil, err
	}

	out := &CampaignSummary{
		CausesByFamily: make(map[string]int),
		Table2:         report.Table2(res),
		Table3:         report.Table3(res),
		Figure5:        report.Figure5(res),
		Figure6:        report.Figure6(res),
		Figure7:        report.Figure7(res),
		Causes:         report.Causes(res),
		CodeCache:      CodeCacheStats{Hits: res.CodeCache.Hits, Misses: res.CodeCache.Misses},
		Duration:       time.Since(start), //cogdiff:allow-nondeterminism duration is summary metadata, never report-table content
	}
	for _, r := range res.Reports {
		p, c, d := r.Totals()
		out.Rows = append(out.Rows, CampaignRow{
			Compiler:     r.Compiler.String(),
			Instructions: r.TestedInstructions(),
			Paths:        p,
			Curated:      c,
			Differences:  d,
		})
		out.TotalDifferences += d
	}
	for fam, n := range res.CausesByFamily() {
		out.CausesByFamily[fam.String()] = n
	}
	out.TotalCauses = len(res.Causes)
	out.Cache = cacheStatsOf(cache)
	out.FingerprintErrors = res.FingerprintErrors
	return out, nil
}

// VerifyIROptions configures a compile-only static verification sweep.
type VerifyIROptions struct {
	// Context, when non-nil, cancels the sweep at the next unit boundary.
	Context context.Context
	// Pristine sweeps the defect-free VM instead of the production
	// defect state. Both are verifier-clean: the seeded semantic defects
	// change behaviour, not IR well-formedness.
	Pristine bool
	// ConstFoldSignError / MetaJITGuardSignError / VerifyStackLeak seed
	// the corresponding defects (see CampaignOptions). Only
	// VerifyStackLeak is structural — it is the defect the verifier
	// exists to catch statically.
	ConstFoldSignError    bool
	MetaJITGuardSignError bool
	VerifyStackLeak       bool
	// Compilers selects the swept compiler set by canonical name.
	// Empty means AllCompilers() — static verification is cheap enough
	// to cover all five.
	Compilers []string
	// MaxIterations bounds the concolic exploration per instruction
	// (0 = default).
	MaxIterations int
	// Workers shards the sweep (0 = GOMAXPROCS). The rendered report is
	// byte-identical at any worker count.
	Workers int
	// Metrics, when non-nil, collects exploration and verifier telemetry.
	Metrics *telemetry.Registry
	// CacheDir/CacheMode share the exploration cache with ordinary
	// campaigns: a sweep after a campaign re-explores nothing.
	CacheDir  string
	CacheMode string
}

// VerifyIRSummary is the outcome of a compile-only verification sweep.
type VerifyIRSummary struct {
	// Report is the deterministic rendering: per-compiler totals followed
	// by every violation with its blame string.
	Report string
	// Compiled counts (path, compiler, ISA) units that compiled and
	// verified cleanly; Skipped the expected non-compilable paths;
	// Violations the static rejections.
	Compiled   int
	Skipped    int
	Violations int
	Duration   time.Duration
}

// VerifyIR statically verifies the whole instruction catalog without
// executing anything: every explored path of every instruction is
// compiled by every selected compiler on both ISAs with the IR verifier
// on — front-end output and every pass prefix checked — and the code is
// discarded. A pristine or production catalog reports zero violations;
// a seeded structural defect (VerifyStackLeak) is caught and blamed
// here, before a single instruction of the broken code could run.
func VerifyIR(opts VerifyIROptions) (*VerifyIRSummary, error) {
	start := time.Now() //cogdiff:allow-nondeterminism duration is summary metadata, never report-table content
	cfg := core.DefaultConfig()
	if opts.Pristine {
		cfg.Defects = defects.Pristine()
	}
	cfg.Defects.ConstFoldSignError = opts.ConstFoldSignError
	cfg.Defects.MetaJITGuardSignError = opts.MetaJITGuardSignError
	cfg.Defects.VerifyStackLeak = opts.VerifyStackLeak
	names := opts.Compilers
	if len(names) == 0 {
		names = AllCompilers()
	}
	kinds, err := compilerKindsOf(names)
	if err != nil {
		return nil, err
	}
	cfg.Compilers = kinds
	if opts.MaxIterations > 0 {
		cfg.Explore.MaxIterations = opts.MaxIterations
	}
	cfg.Workers = opts.Workers
	cfg.Metrics = opts.Metrics
	cache, err := openCache(opts.CacheDir, opts.CacheMode, opts.Metrics)
	if err != nil {
		return nil, err
	}
	cfg.Cache = cache
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := core.NewCampaign(cfg).VerifyIR(ctx)
	if err != nil {
		return nil, err
	}
	return &VerifyIRSummary{
		Report:     res.Render(),
		Compiled:   res.Compiled,
		Skipped:    res.Skipped,
		Violations: res.Violations,
		Duration:   time.Since(start), //cogdiff:allow-nondeterminism duration is summary metadata, never report-table content
	}, nil
}

// DumpIR renders every compilation stage of one instruction for one
// compiler: the front-end IR, the IR after each optimization pass, and
// the lowered machine program for both ISAs.
func DumpIR(instruction, compiler string) (string, error) {
	target, prims, err := resolveTarget(instruction)
	if err != nil {
		return "", err
	}
	kind, err := compilerKindOf(compiler)
	if err != nil {
		return "", err
	}
	explorer := concolic.NewExplorer(prims, concolic.DefaultOptions())
	ex := explorer.Explore(target)
	tester := core.NewTester(prims, defects.ProductionVM())
	return tester.DumpIR(target, ex, kind)
}

// SeededCauseInventory returns the seeded defect catalog grouped by
// family, for comparing rediscovered causes against ground truth.
func SeededCauseInventory() map[string]int {
	out := make(map[string]int)
	for fam, n := range defects.CountByFamily(defects.Catalog()) {
		out[fam.String()] = n
	}
	return out
}

// SortedFamilies returns family names in canonical order.
func SortedFamilies(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
