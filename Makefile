# Verify tiers for the cogdiff reproduction.
#
#   tier 1: make build test      — full suite, serial semantics pinned
#   tier 2: make test-race       — reduced campaign config under -race,
#                                  guarding the parallel campaign engine
#
# `make ci` runs what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: all build vet lint test test-short test-race bench bench-go cache-smoke perf-smoke fuzz fuzz-smoke blame-smoke metacompile-smoke metrics-smoke serve-smoke verify-smoke fmt-check golden-update ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-invariant linters: build the cogdiff-lint analyzer driver and run
# it over every package through `go vet -vettool`, so the determinism,
# semantics-version and telemetry-naming rules gate exactly like the
# stock vet checks. `go run ./cmd/cogdiff-lint` (no arguments) is the
# standalone equivalent.
lint:
	rm -rf lint.tmp
	mkdir -p lint.tmp
	$(GO) build -o lint.tmp/cogdiff-lint ./cmd/cogdiff-lint
	$(GO) vet -vettool=lint.tmp/cogdiff-lint ./...
	rm -rf lint.tmp

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector tier: the campaign tests run their reduced (-short)
# configuration, which still shards exploration and differential testing
# across 4 and GOMAXPROCS workers.
test-race:
	$(GO) test -race -short ./...

# Perf trajectory: export machine-readable benchmark records for the
# campaign engine (cold vs warm through the exploration cache) and the
# fuzzing engine. CI uploads BENCH_*.json as artifacts so the history of
# every change is comparable. The -baseline flags carry the committed
# pre-overhaul baselineNsPerOp forward into the regenerated records, so
# the perf-smoke gate never silently re-baselines itself.
bench:
	rm -rf bench-cache.tmp
	$(GO) run ./cmd/cogdiff bench-export -cache-dir bench-cache.tmp \
		-baseline BENCH_campaign.json -out BENCH_campaign.json campaign
	$(GO) run ./cmd/cogdiff bench-export -baseline BENCH_fuzz.json -out BENCH_fuzz.json fuzz
	$(GO) run ./cmd/cogdiff bench-export -out BENCH_serve.json serve
	$(GO) run ./cmd/cogdiff bench-export -lint BENCH_campaign.json BENCH_fuzz.json BENCH_serve.json
	rm -rf bench-cache.tmp

# The Go-native microbenchmarks (includes the cache=cold/cache=warm
# campaign variants).
bench-go:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Exploration-cache smoke test, observed end to end from the CLI: the
# campaign report must be byte-identical with caching off, populating a
# cold cache, and served warm at 1 and 4 workers — and the warm run must
# be at least 3x faster than the cold one (the acceptance bar; local
# measurements are ~20x).
cache-smoke:
	rm -rf cache-smoke.tmp
	$(GO) build -o cache-smoke.tmp/cogdiff ./cmd/cogdiff
	cache-smoke.tmp/cogdiff table2 -workers 1 > cache-smoke.tmp/off.txt
	cache-smoke.tmp/cogdiff table2 -workers 1 -cache-dir cache-smoke.tmp/cache > cache-smoke.tmp/cold.txt
	cache-smoke.tmp/cogdiff table2 -workers 1 -cache-dir cache-smoke.tmp/cache > cache-smoke.tmp/warm1.txt
	cache-smoke.tmp/cogdiff table2 -workers 4 -cache-dir cache-smoke.tmp/cache > cache-smoke.tmp/warm4.txt
	cmp cache-smoke.tmp/off.txt cache-smoke.tmp/cold.txt
	cmp cache-smoke.tmp/off.txt cache-smoke.tmp/warm1.txt
	cmp cache-smoke.tmp/off.txt cache-smoke.tmp/warm4.txt
	cache-smoke.tmp/cogdiff bench-export -min-speedup 3 -cache-dir cache-smoke.tmp/bench-cache \
		-baseline BENCH_campaign.json -out cache-smoke.tmp/BENCH_campaign.json campaign
	cache-smoke.tmp/cogdiff bench-export -lint cache-smoke.tmp/BENCH_campaign.json
	rm -rf cache-smoke.tmp

# Raw-speed gate for the execution-core overhaul: re-measure the serial
# campaign on this machine and hold it to the acceptance bars against the
# pre-overhaul baseline carried in the committed BENCH_campaign.json —
# at least 5x wall-clock speedup and at least an 80% cut in per-path
# allocations versus the fresh-boot architecture. GOMAXPROCS=1 matches
# how the baseline was captured, so parallelism can't mask a regression.
perf-smoke:
	rm -rf perf-smoke.tmp
	mkdir -p perf-smoke.tmp
	$(GO) build -o perf-smoke.tmp/cogdiff ./cmd/cogdiff
	GOMAXPROCS=1 perf-smoke.tmp/cogdiff bench-export -workers 1 \
		-baseline BENCH_campaign.json -min-baseline-speedup 5 -min-alloc-reduction 0.8 \
		-min-codecache-hitrate 0.2 \
		-out perf-smoke.tmp/BENCH_campaign.json campaign
	perf-smoke.tmp/cogdiff bench-export -lint perf-smoke.tmp/BENCH_campaign.json
	rm -rf perf-smoke.tmp

# Explore random byte-code sequences across all three compilers and both
# ISAs (30s smoke run; raise -fuzztime for a real session).
fuzz:
	$(GO) test -fuzz=FuzzSequenceDiff -fuzztime=30s ./internal/core/

# Coverage-guided fuzzing smoke run: fixed seed, small budget, minimized
# differences — deterministic, finishes well inside 30s.
fuzz-smoke:
	$(GO) run ./cmd/cogdiff fuzz -seed 2022 -budget 2000 -workers 0 \
		-seed-corpus internal/core/testdata/fuzz/FuzzSequenceDiff

# Pass-level blame smoke test: a campaign with the pass-targeted
# constant-folding defect must name the guilty pass in its cause table.
blame-smoke:
	$(GO) run ./cmd/cogdiff campaign -defect-constfold -workers 0 | grep -q "pass:constfold"

# Fifth-compiler smoke test, observed end to end from the CLI: the
# meta-compiled front-end joins the campaign via -compilers +metajit and
# the stable report must be byte-identical across worker counts; on the
# pristine VM it must agree with the interpreter (zero differences on a
# reference instruction); and the meta-compiler guard-sign defect must
# surface as front-end blame.
metacompile-smoke:
	rm -rf metacompile-smoke.tmp
	mkdir -p metacompile-smoke.tmp
	$(GO) build -o metacompile-smoke.tmp/cogdiff ./cmd/cogdiff
	metacompile-smoke.tmp/cogdiff difftest -pristine primAdd metajit | grep -q " 0 differences"
	metacompile-smoke.tmp/cogdiff campaign -compilers +metajit -workers 1 -stable > metacompile-smoke.tmp/w1.txt
	metacompile-smoke.tmp/cogdiff campaign -compilers +metajit -workers 4 -stable > metacompile-smoke.tmp/w4.txt
	cmp metacompile-smoke.tmp/w1.txt metacompile-smoke.tmp/w4.txt
	grep -q "Meta-compiled BC Compiler" metacompile-smoke.tmp/w1.txt
	metacompile-smoke.tmp/cogdiff difftest -pristine -defect-metajit-guard primLessThan metajit | grep -q "front-end"
	rm -rf metacompile-smoke.tmp

# Telemetry smoke test: a small campaign writes a Prometheus metrics
# snapshot, which metrics-lint must validate (the exposition-format
# round-trip contract, observed end to end from the CLI).
metrics-smoke:
	$(GO) run ./cmd/cogdiff campaign -workers 4 -metrics metrics-smoke.prom -metrics-format prom > /dev/null
	$(GO) run ./cmd/cogdiff metrics-lint metrics-smoke.prom
	rm -f metrics-smoke.prom

# Service-layer smoke test, observed end to end from the CLI: start a
# real server, submit a sharded campaign over HTTP, and require the
# served report byte-identical to the serial local run (-stable is the
# deterministic report surface both sides print). The scraped /metrics
# must lint as Prometheus text, and the shared corpus directory must
# hold the fuzz job's entries.
serve-smoke:
	rm -rf serve-smoke.tmp
	mkdir -p serve-smoke.tmp
	$(GO) build -o serve-smoke.tmp/cogdiff ./cmd/cogdiff
	serve-smoke.tmp/cogdiff campaign -workers 1 -stable > serve-smoke.tmp/serial.txt
	serve-smoke.tmp/cogdiff serve -addr 127.0.0.1:18377 \
		-cache-dir serve-smoke.tmp/cache -corpus-dir serve-smoke.tmp/corpus \
		2> serve-smoke.tmp/serve.log & echo $$! > serve-smoke.tmp/serve.pid
	serve-smoke.tmp/cogdiff submit -addr http://127.0.0.1:18377 \
		campaign -workers 4 -cache rw > serve-smoke.tmp/served.txt
	cmp serve-smoke.tmp/serial.txt serve-smoke.tmp/served.txt
	serve-smoke.tmp/cogdiff submit -addr http://127.0.0.1:18377 \
		fuzz -budget 500 -shared-corpus > /dev/null
	ls serve-smoke.tmp/corpus/seq-*.json > /dev/null
	curl -sf http://127.0.0.1:18377/metrics > serve-smoke.tmp/metrics.prom
	serve-smoke.tmp/cogdiff metrics-lint serve-smoke.tmp/metrics.prom
	kill `cat serve-smoke.tmp/serve.pid`
	rm -rf serve-smoke.tmp

# Static-verification smoke test, observed end to end from the CLI:
# the compile-only sweep must verify the whole catalog clean at 1 and 4
# workers with byte-identical reports, the seeded stack-leak defect must
# be rejected statically with blame on the guilty pass, the campaign
# report must be byte-identical with the verifier on and off (the
# verifier observes, never shapes), and the verifier's self-timed share
# of campaign wall time must stay under 5% (-workers 1, where the
# telemetry sum equals the wall-time share).
verify-smoke:
	rm -rf verify-smoke.tmp
	mkdir -p verify-smoke.tmp
	$(GO) build -o verify-smoke.tmp/cogdiff ./cmd/cogdiff
	verify-smoke.tmp/cogdiff verify-ir -workers 1 > verify-smoke.tmp/v1.txt
	verify-smoke.tmp/cogdiff verify-ir -workers 4 > verify-smoke.tmp/v4.txt
	cmp verify-smoke.tmp/v1.txt verify-smoke.tmp/v4.txt
	grep -q "0 violations" verify-smoke.tmp/v1.txt
	! verify-smoke.tmp/cogdiff verify-ir -defect-verify-stackleak -compilers simple \
		> verify-smoke.tmp/defect.txt 2>&1
	grep -q "ir-verify:stack-balance after pass:peephole" verify-smoke.tmp/defect.txt
	verify-smoke.tmp/cogdiff campaign -workers 1 -stable > verify-smoke.tmp/on.txt
	verify-smoke.tmp/cogdiff campaign -workers 1 -stable -no-verify > verify-smoke.tmp/off.txt
	cmp verify-smoke.tmp/on.txt verify-smoke.tmp/off.txt
	verify-smoke.tmp/cogdiff bench-export -iterations 8 -workers 1 -max-verifier-share 0.05 \
		-baseline BENCH_campaign.json -out verify-smoke.tmp/BENCH_campaign.json campaign
	verify-smoke.tmp/cogdiff bench-export -lint verify-smoke.tmp/BENCH_campaign.json
	rm -rf verify-smoke.tmp

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Re-capture the CLI golden files after an intentional format change.
golden-update:
	$(GO) test ./cmd/cogdiff/ -run TestGolden -update

ci: build vet lint fmt-check test test-race fuzz-smoke blame-smoke metacompile-smoke metrics-smoke cache-smoke perf-smoke serve-smoke verify-smoke
