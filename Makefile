# Verify tiers for the cogdiff reproduction.
#
#   tier 1: make build test      — full suite, serial semantics pinned
#   tier 2: make test-race       — reduced campaign config under -race,
#                                  guarding the parallel campaign engine
#
# `make ci` runs what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: all build vet test test-short test-race bench fuzz fuzz-smoke blame-smoke metrics-smoke fmt-check golden-update ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector tier: the campaign tests run their reduced (-short)
# configuration, which still shards exploration and differential testing
# across 4 and GOMAXPROCS workers.
test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Explore random byte-code sequences across all three compilers and both
# ISAs (30s smoke run; raise -fuzztime for a real session).
fuzz:
	$(GO) test -fuzz=FuzzSequenceDiff -fuzztime=30s ./internal/core/

# Coverage-guided fuzzing smoke run: fixed seed, small budget, minimized
# differences — deterministic, finishes well inside 30s.
fuzz-smoke:
	$(GO) run ./cmd/cogdiff fuzz -seed 2022 -budget 2000 -workers 0 \
		-seed-corpus internal/core/testdata/fuzz/FuzzSequenceDiff

# Pass-level blame smoke test: a campaign with the pass-targeted
# constant-folding defect must name the guilty pass in its cause table.
blame-smoke:
	$(GO) run ./cmd/cogdiff campaign -defect-constfold -workers 0 | grep -q "pass:constfold"

# Telemetry smoke test: a small campaign writes a Prometheus metrics
# snapshot, which metrics-lint must validate (the exposition-format
# round-trip contract, observed end to end from the CLI).
metrics-smoke:
	$(GO) run ./cmd/cogdiff campaign -workers 4 -metrics metrics-smoke.prom -metrics-format prom > /dev/null
	$(GO) run ./cmd/cogdiff metrics-lint metrics-smoke.prom
	rm -f metrics-smoke.prom

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Re-capture the CLI golden files after an intentional format change.
golden-update:
	$(GO) test ./cmd/cogdiff/ -run TestGolden -update

ci: build vet fmt-check test test-race fuzz-smoke blame-smoke metrics-smoke
